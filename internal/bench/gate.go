package bench

// Pure gate checks: the comparisons behind TestBenchAllocGate and
// TestBatchedBaselineMargin, factored out of the test asserts so the
// failure branches (regressed allocs/op, missing or stale baseline
// records) are typed errors a caller — or a test — can discriminate
// with errors.Is instead of reading t.Errorf text.

import (
	"errors"
	"fmt"
)

// Gate failure kinds.
var (
	// ErrMissingRecord: the committed baseline lacks the benchmark
	// record the gate compares against.
	ErrMissingRecord = errors.New("bench: baseline record missing")
	// ErrAllocRegression: a measured allocs/op exceeds baseline +10%.
	ErrAllocRegression = errors.New("bench: allocs/op regression")
	// ErrPoolingMargin: the pooled path no longer halves allocations
	// relative to the allocating reference.
	ErrPoolingMargin = errors.New("bench: pooling margin lost")
	// ErrBatchMargin: the fused batched forward lost its per-candidate
	// speed margin over the sequential reference.
	ErrBatchMargin = errors.New("bench: batched margin lost")
	// ErrStaleBaseline: the baseline's batched records pin a lane count
	// other than the harness's BatchLanes — re-record.
	ErrStaleBaseline = errors.New("bench: baseline lane pin mismatch")
)

// allocLimit is the gate's regression budget: baseline +10%.
func allocLimit(baseline int64) int64 { return baseline + baseline/10 }

// CheckAllocGate holds a freshly measured pooled refine-loop record to
// the committed baseline: allocs/op within +10% of the recorded
// refine_loop, and still at least 2x leaner than the allocating
// reference measurement.
func (b *Baseline) CheckAllocGate(pooled, allocating Record) error {
	rec, ok := b.Benchmarks["refine_loop"]
	if !ok {
		return fmt.Errorf("%w: refine_loop", ErrMissingRecord)
	}
	if limit := allocLimit(rec.AllocsOp); pooled.AllocsOp > limit {
		return fmt.Errorf("%w: pooled refine loop %d allocs/op > %d (baseline %d +10%%)",
			ErrAllocRegression, pooled.AllocsOp, limit, rec.AllocsOp)
	}
	if pooled.AllocsOp*2 > allocating.AllocsOp {
		return fmt.Errorf("%w: pooled %d vs allocating %d allocs/op",
			ErrPoolingMargin, pooled.AllocsOp, allocating.AllocsOp)
	}
	return nil
}

// CheckBatchedAllocGate holds a per-candidate batched refine record to
// the recorded refine_batched +10%.
func (b *Baseline) CheckBatchedAllocGate(batched Record) error {
	rec, ok := b.Benchmarks["refine_batched"]
	if !ok {
		return fmt.Errorf("%w: refine_batched", ErrMissingRecord)
	}
	if limit := allocLimit(rec.AllocsOp); batched.AllocsOp > limit {
		return fmt.Errorf("%w: batched refine loop %d allocs/op per candidate > %d (baseline %d +10%%)",
			ErrAllocRegression, batched.AllocsOp, limit, rec.AllocsOp)
	}
	return nil
}

// CheckBatchedMargin holds the fused per-candidate forward cost to at
// least floor× cheaper than the sequential reference.
func CheckBatchedMargin(fused, seq Record, floor float64) error {
	if fused.NsOp*floor > seq.NsOp {
		return fmt.Errorf("%w: fused %.0f ns/candidate vs sequential %.0f (< %.1fx floor)",
			ErrBatchMargin, fused.NsOp, seq.NsOp, floor)
	}
	return nil
}

// CheckBaselineMargin validates the committed batched records
// themselves: both present, pinned to BatchLanes, and carrying the
// >=1.5x per-candidate margin the recorder enforces.
func (b *Baseline) CheckBaselineMargin() error {
	fused, okF := b.Benchmarks["gnn_forward_batched"]
	seq, okS := b.Benchmarks["gnn_forward_sequential"]
	if !okF || !okS {
		return fmt.Errorf("%w: gnn_forward_batched/gnn_forward_sequential", ErrMissingRecord)
	}
	if fused.Lanes != BatchLanes || seq.Lanes != BatchLanes {
		return fmt.Errorf("%w: records pin %d/%d lanes, harness pins %d",
			ErrStaleBaseline, fused.Lanes, seq.Lanes, BatchLanes)
	}
	return CheckBatchedMargin(fused, seq, 1.5)
}
