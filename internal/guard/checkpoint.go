package guard

import (
	"encoding/json"
	"hash/crc32"
	"os"

	"tsteiner/internal/guard/fault"
)

// checkpointMagic identifies a guard checkpoint envelope; Version gates
// future schema migrations.
const (
	checkpointMagic   = "tsteiner-ckpt"
	checkpointVersion = 1
)

// envelope wraps a checkpoint payload with a CRC32 (IEEE) checksum so a
// torn write on a non-atomic filesystem — or a fault-injected truncation —
// is detected on load instead of decoded partially.
type envelope struct {
	Magic   string
	Version int
	CRC     uint32
	Payload json.RawMessage
}

// WriteCheckpoint marshals v, seals it in a checksummed envelope and
// writes it atomically. inj (nil in production) exercises the torn-write
// path: when the "guard.ckpt.truncate" site fires, only half the envelope
// reaches the file, which ReadCheckpoint must then reject.
func WriteCheckpoint(path string, v any, inj *fault.Injector) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	env := envelope{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if inj.Fire("guard.ckpt.truncate") {
		data = data[:len(data)/2]
	}
	return AtomicWriteFile(path, data, 0o644)
}

// DecodeCheckpoint validates a checkpoint envelope held in memory and
// decodes its payload into v. path only labels errors. This is the
// byte-level entry point ReadCheckpoint is built on (and the fuzzing
// surface: arbitrary bytes must produce either a decoded value or a
// *CorruptError, never a panic or a partial decode).
func DecodeCheckpoint(path string, data []byte, v any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return &CorruptError{Path: path, Reason: "truncated or malformed envelope", Err: err}
	}
	if env.Magic != checkpointMagic {
		return &CorruptError{Path: path, Reason: "not a checkpoint file"}
	}
	if env.Version != checkpointVersion {
		return &CorruptError{Path: path, Reason: "unsupported checkpoint version"}
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC {
		return &CorruptError{Path: path, Reason: "payload checksum mismatch"}
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return &CorruptError{Path: path, Reason: "payload decode failed", Err: err}
	}
	return nil
}

// ReadCheckpoint loads a checkpoint into v. A missing file returns
// (false, nil) — a fresh start, not an error. Truncation, checksum
// mismatch or schema drift return a *CorruptError: resuming from a bad
// checkpoint must fail loudly, never silently restart.
func ReadCheckpoint(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := DecodeCheckpoint(path, data, v); err != nil {
		return false, err
	}
	return true, nil
}
