package guard_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsteiner/internal/guard"
)

// FuzzReadCheckpoint throws arbitrary bytes at the checkpoint decoder.
// The contract under fuzzing: any input either decodes cleanly or is
// rejected with a *guard.CorruptError — never a panic, and never a
// silent partial decode (enforced structurally by the CRC envelope).
func FuzzReadCheckpoint(f *testing.F) {
	type payload struct {
		Epoch int
		Loss  float64
		Note  string
	}
	path := filepath.Join(f.TempDir(), "ckpt.json")
	if err := guard.WriteCheckpoint(path, payload{Epoch: 3, Loss: 0.25, Note: "seed"}, nil); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add([]byte(`{"Magic":"tsteiner-ckpt","Version":1,"CRC":0,"Payload":{}}`))
	f.Add([]byte(`{"Magic":"other","Version":1,"CRC":0,"Payload":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var v payload
		if err := guard.DecodeCheckpoint("fuzz", data, &v); err != nil {
			var ce *guard.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decoder failed with a non-CorruptError: %T %v", err, err)
			}
		}
	})
}
