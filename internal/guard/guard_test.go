package guard

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tsteiner/internal/guard/fault"
)

func TestNilBudgetNeverExceeds(t *testing.T) {
	var b *Budget
	b.Start()
	if _, ok := b.Exceeded(1 << 30); ok {
		t.Fatal("nil budget exceeded")
	}
	if _, ok := b.ExceededWall(); ok {
		t.Fatal("nil budget wall exceeded")
	}
}

func TestBudgetMaxIters(t *testing.T) {
	b := &Budget{MaxIters: 3}
	for i := 0; i < 3; i++ {
		if reason, ok := b.Exceeded(i); ok {
			t.Fatalf("iter %d exceeded early: %s", i, reason)
		}
	}
	if _, ok := b.Exceeded(3); !ok {
		t.Fatal("iter 3 should exceed MaxIters=3")
	}
}

func TestBudgetWallClock(t *testing.T) {
	b := &Budget{Wall: time.Millisecond}
	b.Start()
	if _, ok := b.ExceededWall(); ok {
		t.Fatal("exceeded immediately")
	}
	time.Sleep(10 * time.Millisecond)
	reason, ok := b.ExceededWall()
	if !ok {
		t.Fatal("not exceeded after sleeping past the budget")
	}
	if reason == "" {
		t.Fatal("empty cutoff reason")
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("got %q, want v2", data)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

type ckptPayload struct {
	Epoch  int
	Params []float64
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt")
	in := ckptPayload{Epoch: 7, Params: []float64{1.5, -2.25, 0}}
	if err := WriteCheckpoint(path, in, nil); err != nil {
		t.Fatal(err)
	}
	var out ckptPayload
	found, err := ReadCheckpoint(path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("checkpoint not found")
	}
	if out.Epoch != in.Epoch || len(out.Params) != len(in.Params) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Params {
		if out.Params[i] != in.Params[i] {
			t.Fatalf("param %d: %v != %v", i, out.Params[i], in.Params[i])
		}
	}
}

func TestCheckpointMissingIsFreshStart(t *testing.T) {
	var out ckptPayload
	found, err := ReadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("absent checkpoint reported found")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]func(path string){
		"truncated": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bitflip": func(path string) {
			data, _ := os.ReadFile(path)
			// Flip a payload byte without breaking JSON: digits live in
			// the Params array.
			for i := len(data) - 1; i >= 0; i-- {
				if data[i] >= '1' && data[i] <= '8' {
					data[i]++
					break
				}
			}
			os.WriteFile(path, data, 0o644)
		},
		"garbage": func(path string) {
			os.WriteFile(path, []byte("not json at all"), 0o644)
		},
		"wrong-magic": func(path string) {
			os.WriteFile(path, []byte(`{"Magic":"other","Version":1,"CRC":0,"Payload":{}}`), 0o644)
		},
	}
	for name, corrupt := range cases {
		path := filepath.Join(dir, name+".ckpt")
		if err := WriteCheckpoint(path, ckptPayload{Epoch: 3, Params: []float64{1, 2, 3, 4, 5, 6, 7, 8}}, nil); err != nil {
			t.Fatal(err)
		}
		corrupt(path)
		var out ckptPayload
		_, err := ReadCheckpoint(path, &out)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %v, want *CorruptError", name, err)
		}
	}
}

func TestFaultTruncatedCheckpointWriteIsRejectedOnRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	inj := fault.New(1)
	inj.Arm("guard.ckpt.truncate", 1)
	if err := WriteCheckpoint(path, ckptPayload{Epoch: 1, Params: []float64{1, 2}}, inj); err != nil {
		t.Fatal(err)
	}
	var out ckptPayload
	_, err := ReadCheckpoint(path, &out)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("torn write: got %v, want *CorruptError", err)
	}
	// The next (un-injected) write heals the file.
	if err := WriteCheckpoint(path, ckptPayload{Epoch: 2, Params: []float64{3}}, inj); err != nil {
		t.Fatal(err)
	}
	found, err := ReadCheckpoint(path, &out)
	if err != nil || !found {
		t.Fatalf("healed write: found=%v err=%v", found, err)
	}
	if out.Epoch != 2 {
		t.Fatalf("healed epoch %d, want 2", out.Epoch)
	}
}
