// Package fault is the repository's deterministic fault-injection
// substrate: a nil-safe Injector that instrumented call sites consult at
// named sites ("core.nan", "train.nan", "guard.ckpt.truncate", ...). A nil
// *Injector is the production default and makes every consult a single nil
// check — the same zero-overhead contract as the nil *obs.Sink.
//
// Determinism contract: whether a site fires depends only on the armed
// rules, the site's consult count and the injector seed — never on wall
// clock, goroutine identity or scheduling. Two runs with the same injector
// configuration observe the same fault sequence at every site whose
// consult order is itself deterministic (which the par/obs determinism
// invariants guarantee for every instrumented site in this repository).
package fault

import (
	"sync"
	"time"
)

// rule arms one site. Hits are 1-based consult counts.
type rule struct {
	from, to int     // fire when from <= hit <= to (to == 0: exactly from; to < 0: forever)
	prob     float64 // >0: fire pseudo-randomly with this per-hit probability instead
	stall    time.Duration
}

// Injector holds the armed fault rules and per-site consult counters. It is
// safe for concurrent use: parallel workers may consult the same site.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules map[string]*rule
	hits  map[string]int
}

// New returns an empty injector. The seed drives the per-site pseudo-random
// streams used by ArmProb; sites armed with Arm/ArmFrom fire on exact
// consult counts and ignore it.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rules: map[string]*rule{}, hits: map[string]int{}}
}

// Arm makes site fire exactly on its nth consult (1-based).
func (in *Injector) Arm(site string, nth int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[site] = &rule{from: nth}
	in.mu.Unlock()
}

// ArmFrom makes site fire on every consult from the nth on (1-based) —
// a persistent fault, e.g. a surrogate that stays non-finite.
func (in *Injector) ArmFrom(site string, nth int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[site] = &rule{from: nth, to: -1}
	in.mu.Unlock()
}

// ArmProb makes site fire pseudo-randomly with probability p per consult,
// deterministically derived from (seed, site, consult index).
func (in *Injector) ArmProb(site string, p float64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[site] = &rule{prob: p}
	in.mu.Unlock()
}

// ArmStall makes Stall(site) sleep for d on the nth consult (1-based) —
// the "task stalls past the budget" fault.
func (in *Injector) ArmStall(site string, nth int, d time.Duration) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules[site] = &rule{from: nth, stall: d}
	in.mu.Unlock()
}

// Fire consults a site: it increments the site's hit counter and reports
// whether an armed rule fires on this hit. Unarmed sites never fire (but
// still count, so arming mid-run composes predictably in tests).
func (in *Injector) Fire(site string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	h := in.hits[site]
	r := in.rules[site]
	if r == nil {
		return false
	}
	if r.prob > 0 {
		return siteRand(in.seed, site, h) < r.prob
	}
	switch {
	case r.to < 0:
		return h >= r.from
	case r.to == 0:
		return h == r.from
	default:
		return h >= r.from && h <= r.to
	}
}

// Stall consults a site armed with ArmStall and sleeps when it fires.
// Unarmed or non-firing consults return immediately.
func (in *Injector) Stall(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.hits[site]++
	h := in.hits[site]
	r := in.rules[site]
	var d time.Duration
	if r != nil && r.stall > 0 && h == r.from {
		d = r.stall
	}
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Hits reports how many times a site has been consulted (test introspection).
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// siteRand maps (seed, site, hit) to a uniform [0,1) float with a
// SplitMix64-style mix over an FNV-1a hash of the site name — no shared
// RNG stream, so concurrent sites stay independent and reproducible.
func siteRand(seed int64, site string, hit int) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	z := uint64(seed) ^ h ^ (0x9e3779b97f4a7c15 * uint64(hit+1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
