package fault

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	in.Arm("x", 1)
	in.ArmFrom("x", 1)
	in.ArmStall("x", 1, time.Hour)
	if in.Fire("x") {
		t.Fatal("nil injector fired")
	}
	in.Stall("x") // must return immediately
	if in.Hits("x") != 0 {
		t.Fatal("nil injector counted hits")
	}
}

func TestArmFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.Arm("site", 3)
	var fired []int
	for i := 1; i <= 6; i++ {
		if in.Fire("site") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at %v, want [3]", fired)
	}
	if in.Hits("site") != 6 {
		t.Fatalf("hits %d, want 6", in.Hits("site"))
	}
}

func TestArmFromFiresPersistently(t *testing.T) {
	in := New(1)
	in.ArmFrom("site", 4)
	var fired []int
	for i := 1; i <= 6; i++ {
		if in.Fire("site") {
			fired = append(fired, i)
		}
	}
	want := []int{4, 5, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestUnarmedSitesCountButNeverFire(t *testing.T) {
	in := New(1)
	for i := 0; i < 10; i++ {
		if in.Fire("quiet") {
			t.Fatal("unarmed site fired")
		}
	}
	if in.Hits("quiet") != 10 {
		t.Fatalf("hits %d, want 10", in.Hits("quiet"))
	}
}

func TestArmProbIsDeterministicAndSeeded(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.ArmProb("p", 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("p")
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fault sequences")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw sequences")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n < 16 || n > 48 {
		t.Fatalf("p=0.5 fired %d/64 times — stream badly skewed", n)
	}
}

func TestStallSleepsOnlyWhenArmedHitMatches(t *testing.T) {
	in := New(1)
	in.ArmStall("s", 2, 30*time.Millisecond)
	t0 := time.Now()
	in.Stall("s") // hit 1: no sleep
	if d := time.Since(t0); d > 20*time.Millisecond {
		t.Fatalf("unfired stall slept %v", d)
	}
	t0 = time.Now()
	in.Stall("s") // hit 2: sleeps
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("armed stall slept only %v", d)
	}
}

func TestInjectorIsRaceSafe(t *testing.T) {
	in := New(1)
	in.ArmFrom("shared", 50)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Fire("shared")
			}
		}()
	}
	wg.Wait()
	if in.Hits("shared") != 800 {
		t.Fatalf("hits %d, want 800", in.Hits("shared"))
	}
}
