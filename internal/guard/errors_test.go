package guard

import (
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTypedErrorMessages(t *testing.T) {
	be := &BudgetError{Phase: "gr", Reason: "wall-clock budget 1s exceeded"}
	if msg := be.Error(); !strings.Contains(msg, "gr") || !strings.Contains(msg, "budget") {
		t.Errorf("BudgetError message %q", msg)
	}

	inner := errors.New("unexpected end of JSON input")
	ce := &CorruptError{Path: "ckpt.json", Reason: "truncated", Err: inner}
	if msg := ce.Error(); !strings.Contains(msg, "ckpt.json") || !strings.Contains(msg, inner.Error()) {
		t.Errorf("CorruptError message %q", msg)
	}
	if !errors.Is(ce, inner) {
		t.Error("CorruptError.Unwrap does not expose the inner error")
	}
	bare := &CorruptError{Path: "ckpt.json", Reason: "checksum mismatch"}
	if msg := bare.Error(); !strings.Contains(msg, "checksum mismatch") {
		t.Errorf("bare CorruptError message %q", msg)
	}
	if bare.Unwrap() != nil {
		t.Error("bare CorruptError should unwrap to nil")
	}

	ne := &NumericError{Site: "core.gradients", Detail: "NaN at index 3"}
	if msg := ne.Error(); !strings.Contains(msg, "core.gradients") || !strings.Contains(msg, "NaN") {
		t.Errorf("NumericError message %q", msg)
	}
}

func TestAtomicWriteFileErrorPaths(t *testing.T) {
	// Temp-file creation fails when the parent directory does not exist.
	missing := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if err := AtomicWriteFile(missing, []byte("x"), 0o644); err == nil {
		t.Error("expected error writing into a missing directory")
	}
	// The final rename fails when the destination is an existing,
	// non-empty directory.
	dir := t.TempDir()
	dst := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(dst, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(dst, []byte("x"), 0o644); err == nil {
		t.Error("expected error renaming over a non-empty directory")
	}
	// The failed rename must not leave its temp file behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind after failed rename", e.Name())
		}
	}
}

func TestAtomicWriteFunc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "render.txt")
	err := AtomicWriteFunc(path, func(w io.Writer) error {
		_, err := w.Write([]byte("rendered"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "rendered" {
		t.Errorf("content %q", got)
	}

	wantErr := errors.New("render failed")
	err = AtomicWriteFunc(path, func(io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("renderer error not surfaced: %v", err)
	}
	// The file keeps its previous content when rendering fails.
	got, _ = os.ReadFile(path)
	if string(got) != "rendered" {
		t.Errorf("failed render clobbered the file: %q", got)
	}
}

func TestWriteCheckpointMarshalError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := WriteCheckpoint(path, make(chan int), nil); err == nil {
		t.Error("expected marshal error for an unserializable payload")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed marshal must not create the checkpoint file")
	}
}

func TestReadCheckpointReadError(t *testing.T) {
	// A directory path fails os.ReadFile with an error that is not
	// IsNotExist — the "filesystem said no" branch, distinct from both
	// fresh-start and corruption.
	dir := t.TempDir()
	var v map[string]int
	ok, err := ReadCheckpoint(dir, &v)
	if ok || err == nil {
		t.Errorf("ReadCheckpoint(dir) = %v, %v; want false, error", ok, err)
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Error("a read failure must not be reported as corruption")
	}
}

func TestDecodeCheckpointVersionMismatch(t *testing.T) {
	payload, err := json.Marshal(map[string]int{"iter": 3})
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{
		"Magic":   "tsteiner-ckpt",
		"Version": 999,
		"CRC":     crc32.ChecksumIEEE(payload),
		"Payload": json.RawMessage(payload),
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	err = DecodeCheckpoint("future.json", data, &v)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "version") {
		t.Errorf("version drift not rejected as corruption: %v", err)
	}
}
