package guard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	type rec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	if err := AtomicWriteJSON(path, rec{A: 1, B: "x"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
	var got rec
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != (rec{A: 1, B: "x"}) {
		t.Fatalf("round trip: %+v", got)
	}

	// Overwrite replaces the whole file, never appends or truncates badly.
	if err := AtomicWriteJSON(path, rec{A: 2, B: "y"}); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(path)
	var got2 rec
	if err := json.Unmarshal(raw2, &got2); err != nil {
		t.Fatalf("overwritten file corrupt: %v\n%s", err, raw2)
	}
	if got2.A != 2 {
		t.Fatalf("overwrite lost: %+v", got2)
	}

	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp file leaked)", len(entries))
	}

	// Unencodable values fail without touching the destination.
	if err := AtomicWriteJSON(path, map[string]any{"f": func() {}}); err == nil {
		t.Fatal("encoding a func succeeded")
	}
	var still rec
	raw3, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw3, &still); err != nil || still.A != 2 {
		t.Fatalf("failed write damaged destination: %v %+v", err, still)
	}
}
