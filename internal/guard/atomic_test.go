package guard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	type rec struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	if err := AtomicWriteJSON(path, rec{A: 1, B: "x"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
	var got rec
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != (rec{A: 1, B: "x"}) {
		t.Fatalf("round trip: %+v", got)
	}

	// Overwrite replaces the whole file, never appends or truncates badly.
	if err := AtomicWriteJSON(path, rec{A: 2, B: "y"}); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(path)
	var got2 rec
	if err := json.Unmarshal(raw2, &got2); err != nil {
		t.Fatalf("overwritten file corrupt: %v\n%s", err, raw2)
	}
	if got2.A != 2 {
		t.Fatalf("overwrite lost: %+v", got2)
	}

	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp file leaked)", len(entries))
	}

	// Unencodable values fail without touching the destination.
	if err := AtomicWriteJSON(path, map[string]any{"f": func() {}}); err == nil {
		t.Fatal("encoding a func succeeded")
	}
	var still rec
	raw3, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw3, &still); err != nil || still.A != 2 {
		t.Fatalf("failed write damaged destination: %v %+v", err, still)
	}
}

// TestAtomicWriteSyncDirError covers the durability error path: when the
// parent-directory fsync after the rename fails, AtomicWriteFile must
// report it (a caller relying on crash safety must not treat the rename
// as committed), while the renamed content is still the complete new
// bytes — never a torn file.
func TestAtomicWriteSyncDirError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	injected := errors.New("injected open failure")
	old := openDir
	openDir = func(string) (*os.File, error) { return nil, injected }
	defer func() { openDir = old }()

	err := AtomicWriteFile(path, []byte("payload"), 0o644)
	if !errors.Is(err, injected) {
		t.Fatalf("dir fsync failure not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("error does not name the failing step: %v", err)
	}
	// The rename itself completed: the file is whole, just not durable.
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "payload" {
		t.Fatalf("content after fsync failure: %q, %v", got, rerr)
	}
}

// TestAtomicWriteSyncsDir pins the healthy durability path: a normal
// write goes through the directory fsync (openDir consulted) and leaves
// exactly the expected bytes.
func TestAtomicWriteSyncsDir(t *testing.T) {
	dir := t.TempDir()
	opened := 0
	old := openDir
	openDir = func(name string) (*os.File, error) { opened++; return os.Open(name) }
	defer func() { openDir = old }()

	path := filepath.Join(dir, "out.bin")
	if err := AtomicWriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if opened != 1 {
		t.Fatalf("parent directory opened %d times for fsync, want 1", opened)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("content: %q, %v", got, err)
	}
}
