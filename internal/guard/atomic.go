package guard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// openDir is the directory-open seam syncDir goes through; tests override
// it to exercise the fsync error path without unmounting anything.
var openDir = os.Open

// syncDir fsyncs a directory so a rename recorded in it survives a power
// loss, not just a process crash. Filesystems that reject directory fsync
// (EINVAL on some network mounts) are tolerated: the rename itself is
// still atomic there, durability is simply the mount's own contract.
func syncDir(dir string) error {
	d, err := openDir(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// AtomicWriteFile writes data to path via a temp file in the same
// directory followed by os.Rename, so readers never observe a partial
// file: they see either the previous content or the complete new one.
// The temp file is fsynced before the rename and the parent directory
// after it, so the completed write also survives a power-loss-style crash
// — the durability contract checkpoints and spooled jobs rely on.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	// The content is in place and readers see it; reporting a directory
	// fsync failure anyway is deliberate — callers relying on crash
	// safety must not treat an un-persisted rename as committed.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("guard: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}

// AtomicWriteJSON marshals v as indented JSON (with a trailing newline)
// and writes it atomically — the serializer behind run manifests and
// other small provenance records.
func AtomicWriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("guard: atomic write %s: %w", path, err)
	}
	return AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// AtomicWriteFunc renders through fn into memory and writes the result
// atomically — the adapter for the io.Writer-shaped serializers
// (designio.WriteJSON, gnn model saves, SVG emitters).
func AtomicWriteFunc(path string, fn func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		return err
	}
	return AtomicWriteFile(path, buf.Bytes(), 0o644)
}
