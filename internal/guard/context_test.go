package guard

import (
	"context"
	"testing"
	"time"
)

// TestBudgetContext covers the budget→context bridge: nil budgets and
// wall-less budgets yield cancellable contexts without deadlines, a wall
// budget yields a context whose deadline matches the budget origin, and
// expiry cancels the context in lockstep with ExceededWall.
func TestBudgetContext(t *testing.T) {
	// Nil budget: no deadline, still cancellable.
	var nilB *Budget
	ctx, cancel := nilB.Context(nil)
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("nil budget context has a deadline")
	}
	select {
	case <-ctx.Done():
		t.Fatal("nil budget context already done")
	default:
	}
	cancel()
	<-ctx.Done()

	// Iteration-only budget: same as unlimited for the context bridge.
	ctx, cancel = (&Budget{MaxIters: 5}).Context(context.Background())
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("iteration-only budget context has a deadline")
	}
	cancel()

	// Wall budget: deadline = start + Wall, and Context implies Start, so
	// ExceededWall agrees with the same origin.
	b := &Budget{Wall: 50 * time.Millisecond}
	ctx, cancel = b.Context(context.Background())
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("wall budget context has no deadline")
	}
	if until := time.Until(dl); until > 50*time.Millisecond || until < 0 {
		t.Fatalf("deadline %v from now, want within (0, 50ms]", until)
	}
	select {
	case <-ctx.Done():
		t.Fatal("context done before the wall budget expired")
	case <-time.After(5 * time.Millisecond):
	}
	<-ctx.Done() // expires on its own
	if reason, over := b.ExceededWall(); !over {
		t.Fatalf("context expired but ExceededWall disagrees (%q, %v)", reason, over)
	}

	// Parent cancellation propagates ahead of the deadline.
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel = (&Budget{Wall: time.Hour}).Context(parent)
	defer cancel()
	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
