// Package guard is the repository's fault-tolerance substrate: wall-clock
// and iteration budgets checked at phase boundaries, atomic file writes,
// CRC-checksummed checkpoints for resumable training and refinement, and
// the typed errors the recovery policies surface.
//
// Robustness contract — guards are a side channel until a fault occurs:
//
//  1. With no budget armed, no checkpoint path configured and no fault
//     injected, every guarded computation is byte-identical to its
//     unguarded form (exp.TestObsDisabledByteIdentical-style gate).
//  2. A fault never corrupts state: recovery either restores the tracked
//     best solution (core), refuses the poisoned update (train), or
//     surfaces a typed error (*BudgetError, *NumericError, *CorruptError)
//     — never a crash or a partially-applied step.
//  3. Resuming from a checkpoint is byte-identical to never having been
//     interrupted (the determinism invariant makes this testable).
package guard

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Budget bounds a run by wall clock and/or iteration count. The zero value
// and the nil pointer are both "unlimited"; every check on a nil *Budget
// is a single nil test, so call sites pay nothing when no budget is armed.
//
// A Budget may be shared by the flow and the refiner (the cmds arm one per
// process): the wall clock starts at the first check unless Start is
// called explicitly, and starting is idempotent.
type Budget struct {
	Wall     time.Duration // 0 = unlimited wall clock
	MaxIters int           // 0 = unlimited iterations (refinement loop only)

	once  sync.Once
	start time.Time
}

// Start pins the wall-clock origin. Idempotent; the first Exceeded check
// auto-starts an unstarted budget.
func (b *Budget) Start() {
	if b == nil {
		return
	}
	b.once.Do(func() { b.start = time.Now() })
}

// Exceeded checks the iteration bound first (deterministic), then the wall
// clock, and returns the cutoff reason when the budget is spent.
func (b *Budget) Exceeded(iter int) (string, bool) {
	if b == nil {
		return "", false
	}
	if b.MaxIters > 0 && iter >= b.MaxIters {
		return fmt.Sprintf("iteration budget %d reached", b.MaxIters), true
	}
	return b.ExceededWall()
}

// ExceededWall checks only the wall-clock bound — the phase-boundary check
// used by the flow, where iteration counts do not apply.
func (b *Budget) ExceededWall() (string, bool) {
	if b == nil || b.Wall <= 0 {
		return "", false
	}
	b.Start()
	if el := time.Since(b.start); el > b.Wall {
		return fmt.Sprintf("wall-clock budget %s exceeded (%s elapsed)", b.Wall, el.Round(time.Millisecond)), true
	}
	return "", false
}

// Context bridges the wall-clock budget to context.Context cancellation
// for context-aware call sites (HTTP handlers, net dials): the returned
// context is cancelled when the budget's wall clock expires. A nil budget
// or one without a wall bound yields a plainly cancellable context with no
// deadline. Starting the budget is implied (idempotent), so the context
// deadline and ExceededWall agree on the same origin. Callers must call
// the CancelFunc when done, as with context.WithDeadline.
func (b *Budget) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if b == nil || b.Wall <= 0 {
		return context.WithCancel(parent)
	}
	b.Start()
	return context.WithDeadline(parent, b.start.Add(b.Wall))
}

// BudgetError reports a run stopped at a phase boundary because its budget
// expired. The refinement loop does not return it — it returns the best
// solution so far with Result.Cutoff set — but the flow has no meaningful
// partial result, so it fails cleanly with this type.
type BudgetError struct {
	Phase  string
	Reason string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("guard: budget expired at %s: %s", e.Phase, e.Reason)
}

// CorruptError reports a file that failed validation on load — truncated
// JSON, a checksum mismatch, or a structural check that a partial decode
// would otherwise smuggle past.
type CorruptError struct {
	Path   string
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("guard: corrupt %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("guard: corrupt %s: %s", e.Path, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// NumericError reports a non-finite value caught by a numerical guard
// before it could be applied to persistent state (model parameters, the
// tracked best forest).
type NumericError struct {
	Site   string
	Detail string
}

func (e *NumericError) Error() string {
	return fmt.Sprintf("guard: non-finite value at %s: %s", e.Site, e.Detail)
}
