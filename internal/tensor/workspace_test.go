package tensor

import (
	"math/rand"
	"testing"
)

// buildGraph runs a small op graph touching every pooled code path
// (results, grad buffers, index captures, op-internal scratch) and
// returns the loss value plus the leaf gradient.
func buildGraph(tp *Tape, data []float64) (float64, []float64, error) {
	x, err := FromSlice(len(data), 1, data)
	if err != nil {
		return 0, nil, err
	}
	tp.Leaf(x)
	g, err := tp.GatherRows(x, []int32{0, 2, 1, 3, 0})
	if err != nil {
		return 0, nil, err
	}
	s, err := tp.SegmentSum(g, []int32{0, 1, 0, 1, 1}, 2)
	if err != nil {
		return 0, nil, err
	}
	mn, err := tp.SegmentMean(g, []int32{1, 1, 0, 0, 1}, 2)
	if err != nil {
		return 0, nil, err
	}
	l, err := tp.SegmentLSE(g, []int32{0, 0, 1, 1, 1}, 2, 0.3)
	if err != nil {
		return 0, nil, err
	}
	a, err := tp.Add(s, mn)
	if err != nil {
		return 0, nil, err
	}
	a, err = tp.Add(a, l)
	if err != nil {
		return 0, nil, err
	}
	a, err = tp.Tanh(a)
	if err != nil {
		return 0, nil, err
	}
	loss, err := tp.Sum(a)
	if err != nil {
		return 0, nil, err
	}
	if err := tp.Backward(loss); err != nil {
		return 0, nil, err
	}
	return loss.Data[0], append([]float64(nil), x.Grad...), nil
}

// TestWorkspaceOpsByteIdentical re-runs the same graph on a plain tape
// and on a reused workspace tape (several times, so reuse actually
// kicks in) and requires bit-identical values and gradients.
func TestWorkspaceOpsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 4)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	wantLoss, wantGrad, err := buildGraph(NewTape(), data)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	for round := 0; round < 3; round++ {
		loss, grad, err := buildGraph(ws.Tape(), data)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if loss != wantLoss {
			t.Fatalf("round %d: loss %v != %v", round, loss, wantLoss)
		}
		for i := range grad {
			if grad[i] != wantGrad[i] {
				t.Fatalf("round %d: grad[%d] %v != %v", round, i, grad[i], wantGrad[i])
			}
		}
	}
	st := ws.Stats()
	if st.Grabs == 0 {
		t.Fatal("workspace never grabbed a buffer")
	}
	if st.Hits == 0 {
		t.Fatal("workspace reuse never hit the free list across identical rounds")
	}
}

// TestWorkspaceResetZeroes proves reset purity: a buffer polluted in one
// round must come back zeroed in the next.
func TestWorkspaceResetZeroes(t *testing.T) {
	ws := NewWorkspace()
	tp := ws.Tape()
	a := tp.Zeros(3, 2)
	for i := range a.Data {
		a.Data[i] = 42
	}
	tp = ws.Tape() // reset: the same storage must be handed out zeroed
	b := tp.Zeros(3, 2)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("reused buffer element %d = %v, want 0", i, v)
		}
	}
	if ws.Stats().Hits == 0 {
		t.Fatal("expected the second Zeros to reuse the first buffer")
	}
}

func TestAliasSharesBacking(t *testing.T) {
	tp := NewTape()
	data := []float64{1, 2, 3}
	a, err := tp.Alias(3, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Data[0] != &data[0] {
		t.Fatal("Alias copied instead of sharing")
	}
	if _, err := tp.Alias(2, 2, data); err == nil {
		t.Fatal("Alias accepted a shape mismatch")
	}
}

func TestCopyInCopies(t *testing.T) {
	ws := NewWorkspace()
	tp := ws.Tape()
	data := []float64{4, 5}
	c, err := tp.CopyIn(2, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	if &c.Data[0] == &data[0] {
		t.Fatal("CopyIn aliased the input")
	}
	if c.Data[0] != 4 || c.Data[1] != 5 {
		t.Fatalf("CopyIn values %v", c.Data)
	}
	if _, err := tp.CopyIn(3, 1, data); err == nil {
		t.Fatal("CopyIn accepted a shape mismatch")
	}
}

// TestWorkspaceLeafGradPersistence: a Leaf attached to a workspace tape
// but not built by it (a model parameter) must keep an ordinary heap
// gradient buffer that survives workspace resets.
func TestWorkspaceLeafGradPersistence(t *testing.T) {
	ws := NewWorkspace()
	tp := ws.Tape()
	p, _ := FromSlice(2, 1, []float64{1, 2})
	tp.Leaf(p)
	grad := p.Grad
	if grad == nil {
		t.Fatal("Leaf did not allocate a gradient")
	}
	ws.Tape() // reset
	if &p.Grad[0] != &grad[0] {
		t.Fatal("parameter gradient buffer was replaced")
	}
}
