package tensor

import (
	"math/rand"
	"testing"
)

// TestAdamSnapshotRestoreResumesByteIdentically: an optimizer restored
// from a mid-trajectory snapshot must finish with exactly the parameters
// of the uninterrupted run.
func TestAdamSnapshotRestoreResumesByteIdentically(t *testing.T) {
	mkParams := func() []*Tensor {
		rng := rand.New(rand.NewSource(3))
		a := NewMatrix(4, 3)
		b := NewMatrix(1, 3)
		XavierInit(a, rng)
		XavierInit(b, rng)
		return []*Tensor{a, b}
	}
	// Deterministic pseudo-gradient per step.
	applyGrads := func(params []*Tensor, step int) {
		for pi, p := range params {
			if p.Grad == nil {
				p.Grad = make([]float64, p.Len())
			}
			for j := range p.Grad {
				p.Grad[j] = float64((step+1)*(pi+2)) * 0.01 * float64(j%5-2)
			}
		}
	}

	const total, cut = 20, 7

	// Uninterrupted run.
	ref := mkParams()
	refAdam := NewAdam(1e-2, ref)
	for s := 0; s < total; s++ {
		applyGrads(ref, s)
		refAdam.Step()
	}

	// Interrupted run: snapshot at cut, restore into fresh objects.
	p1 := mkParams()
	a1 := NewAdam(1e-2, p1)
	for s := 0; s < cut; s++ {
		applyGrads(p1, s)
		a1.Step()
	}
	st := a1.Snapshot()
	saved := make([][]float64, len(p1))
	for i, p := range p1 {
		saved[i] = append([]float64(nil), p.Data...)
	}

	p2 := mkParams()
	a2 := NewAdam(1e-2, p2)
	for i, p := range p2 {
		copy(p.Data, saved[i])
	}
	if err := a2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for s := cut; s < total; s++ {
		applyGrads(p2, s)
		a2.Step()
	}

	for i := range ref {
		for j := range ref[i].Data {
			if ref[i].Data[j] != p2[i].Data[j] {
				t.Fatalf("param %d[%d]: resumed %v != uninterrupted %v", i, j, p2[i].Data[j], ref[i].Data[j])
			}
		}
	}
}

func TestAdamRestoreRejectsShapeMismatch(t *testing.T) {
	p := []*Tensor{NewMatrix(2, 2)}
	a := NewAdam(1e-2, p)
	st := a.Snapshot()
	st.M = st.M[:0]
	if err := a.Restore(st); err == nil {
		t.Fatal("restore accepted truncated moment slices")
	}
	st2 := a.Snapshot()
	st2.M[0] = st2.M[0][:1]
	if err := a.Restore(st2); err == nil {
		t.Fatal("restore accepted short moment vector")
	}
}
