package tensor

import "fmt"

// Workspace is an arena of reusable tensor storage for the evaluation hot
// path: instead of allocating fresh Data/Grad buffers, tensor headers and
// index captures on every forward/backward pass, a tape bound to a
// workspace draws them from per-length free lists and the caller reclaims
// everything at once with Reset between iterations.
//
// Purity contract (the determinism invariant): every buffer handed out is
// zeroed first, so arithmetic on pooled storage is byte-identical to
// arithmetic on freshly allocated storage, and no state can leak from one
// iteration into the next. The only observable difference between the
// pooled and allocating paths is the allocation count.
//
// Lifetime contract: Reset invalidates every tensor, slice and tape
// recording produced since the previous Reset — callers must copy any
// result they keep (gradients, metrics) out of workspace storage before
// resetting. A Workspace is not safe for concurrent use; parallel fan-outs
// own one workspace per goroutine.
type Workspace struct {
	f64   map[int][][]float64
	i32   map[int][][]int32
	bools map[int][][]bool

	usedF64  [][]float64
	usedI32  [][]int32
	usedBool [][]bool

	headers     []*Tensor
	usedHeaders []*Tensor

	tape *Tape

	grabs, hits int64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		f64:   map[int][][]float64{},
		i32:   map[int][][]int32{},
		bools: map[int][][]bool{},
	}
}

// NewTapeWS returns a tape whose op results draw storage from ws
// (nil ws degrades to a plain allocating tape).
func NewTapeWS(ws *Workspace) *Tape { return &Tape{ws: ws} }

// Tape resets the workspace and returns its owned tape (also reset) —
// the per-iteration entry point: every tensor and recording from the
// previous iteration is reclaimed before the next forward pass begins.
func (ws *Workspace) Tape() *Tape {
	ws.Reset()
	if ws.tape == nil {
		ws.tape = &Tape{ws: ws}
	}
	ws.tape.Reset()
	return ws.tape
}

// Reset reclaims every buffer and tensor header handed out since the
// previous Reset. Tensors obtained before the call must no longer be used.
func (ws *Workspace) Reset() {
	for _, b := range ws.usedF64 {
		ws.f64[len(b)] = append(ws.f64[len(b)], b)
	}
	ws.usedF64 = ws.usedF64[:0]
	for _, b := range ws.usedI32 {
		ws.i32[len(b)] = append(ws.i32[len(b)], b)
	}
	ws.usedI32 = ws.usedI32[:0]
	for _, b := range ws.usedBool {
		ws.bools[len(b)] = append(ws.bools[len(b)], b)
	}
	ws.usedBool = ws.usedBool[:0]
	ws.headers = append(ws.headers, ws.usedHeaders...)
	ws.usedHeaders = ws.usedHeaders[:0]
}

// WorkspaceStats summarizes pool behavior for telemetry: Grabs counts
// buffer requests, Hits the requests served from a free list.
type WorkspaceStats struct {
	Grabs, Hits int64
}

// Stats returns cumulative pool counters (telemetry only — never fed back
// into computation).
func (ws *Workspace) Stats() WorkspaceStats {
	return WorkspaceStats{Grabs: ws.grabs, Hits: ws.hits}
}

// grabF64 returns a zeroed length-n float64 slice from the pool.
func (ws *Workspace) grabF64(n int) []float64 {
	b := ws.grabF64Raw(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// grabF64Raw returns a length-n float64 slice from the pool WITHOUT
// zeroing a reused buffer. Only for op outputs whose kernel writes every
// element (a fresh pool miss is still zeroed by the allocator, so the
// contents must never be read before being written anyway).
func (ws *Workspace) grabF64Raw(n int) []float64 {
	if n == 0 {
		return nil
	}
	ws.grabs++
	var b []float64
	if free := ws.f64[n]; len(free) > 0 {
		b = free[len(free)-1]
		ws.f64[n] = free[:len(free)-1]
		ws.hits++
	} else {
		b = make([]float64, n)
	}
	ws.usedF64 = append(ws.usedF64, b)
	return b
}

// grabI32 returns a length-n int32 slice from the pool (contents
// unspecified; callers overwrite every element).
func (ws *Workspace) grabI32(n int) []int32 {
	if n == 0 {
		return nil
	}
	ws.grabs++
	var b []int32
	if free := ws.i32[n]; len(free) > 0 {
		b = free[len(free)-1]
		ws.i32[n] = free[:len(free)-1]
		ws.hits++
	} else {
		b = make([]int32, n)
	}
	ws.usedI32 = append(ws.usedI32, b)
	return b
}

// grabBool returns a zeroed length-n bool slice from the pool.
func (ws *Workspace) grabBool(n int) []bool {
	if n == 0 {
		return nil
	}
	ws.grabs++
	var b []bool
	if free := ws.bools[n]; len(free) > 0 {
		b = free[len(free)-1]
		ws.bools[n] = free[:len(free)-1]
		for i := range b {
			b[i] = false
		}
		ws.hits++
	} else {
		b = make([]bool, n)
	}
	ws.usedBool = append(ws.usedBool, b)
	return b
}

// header returns a zeroed tensor header from the pool.
func (ws *Workspace) header() *Tensor {
	var t *Tensor
	if n := len(ws.headers); n > 0 {
		t = ws.headers[n-1]
		ws.headers = ws.headers[:n-1]
		*t = Tensor{}
	} else {
		t = &Tensor{}
	}
	ws.usedHeaders = append(ws.usedHeaders, t)
	return t
}

// tensor builds an op-result tensor backed by pooled storage; lanes sets
// the batch-axis length (1 for unbatched). zeroed selects whether a
// reused Data buffer is cleared — accumulating kernels (MatMul,
// SegmentSum) need it, fully-overwriting kernels skip the memclr.
// Gradient buffers are allocated lazily by ensureGrad during Backward,
// so forward-only evaluation never touches them.
func (ws *Workspace) tensor(tp *Tape, lanes, rows, cols int, reqGrad, zeroed bool) *Tensor {
	t := ws.header()
	t.Rows, t.Cols, t.Lanes = rows, cols, lanes
	if zeroed {
		t.Data = ws.grabF64(lanes * rows * cols)
	} else {
		t.Data = ws.grabF64Raw(lanes * rows * cols)
	}
	t.tape = tp
	t.requiresGrad = reqGrad
	t.wsOwned = true
	return t
}

// Alias wraps data as a rows×cols constant on the tape WITHOUT copying.
// The header is per-tape (pooled when the tape has a workspace) but the
// backing slice is shared: callers must not mutate data for the lifetime
// of the tape. Ops never write their inputs, so aliasing one read-only
// batch constant across many tapes — including concurrently — is safe.
func (tp *Tape) Alias(rows, cols int, data []float64) (*Tensor, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: %d values for %dx%d", len(data), rows, cols)
	}
	var t *Tensor
	if tp.ws != nil {
		t = tp.ws.header()
	} else {
		t = &Tensor{}
	}
	t.Rows, t.Cols = rows, cols
	t.Data = data
	t.tape = tp
	return t, nil
}

// Zeros returns a zeroed non-differentiable rows×cols tensor on the tape,
// drawn from the tape's workspace when present.
func (tp *Tape) Zeros(rows, cols int) *Tensor { return tp.result(rows, cols, false) }

// CopyIn copies data into a tape-owned rows×cols tensor — the pooled
// analogue of FromSlice + Constant.
func (tp *Tape) CopyIn(rows, cols int, data []float64) (*Tensor, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: %d values for %dx%d", len(data), rows, cols)
	}
	t := tp.result(rows, cols, false)
	copy(t.Data, data)
	return t, nil
}

// captureI32 copies an index slice for a backward closure, drawing the
// copy from the workspace when present (the defensive copy protects the
// recording from callers mutating their slice before Backward runs).
func (tp *Tape) captureI32(idx []int32) []int32 {
	if tp.ws != nil {
		c := tp.ws.grabI32(len(idx))
		copy(c, idx)
		return c
	}
	return append([]int32(nil), idx...)
}

// scratchF64 returns zeroed op-internal scratch (pooled when possible).
func (tp *Tape) scratchF64(n int) []float64 {
	if tp.ws != nil {
		return tp.ws.grabF64(n)
	}
	return make([]float64, n)
}

// scratchBool returns zeroed op-internal scratch (pooled when possible).
func (tp *Tape) scratchBool(n int) []bool {
	if tp.ws != nil {
		return tp.ws.grabBool(n)
	}
	return make([]bool, n)
}
