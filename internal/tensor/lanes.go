package tensor

import "fmt"

// This file holds the ops that create, slice and reduce the batch ("lane")
// axis. The layout contract: a K-lane tensor stores K independent
// [Rows×Cols] blocks back to back in one contiguous buffer
// (structure-of-arrays), and every Tape op strides over the blocks with a
// single tape record, looping lanes outermost so lane k's values — and
// gradients — are bit-identical to running the unbatched op on lane k's
// block alone.

// ZerosLanes returns a zeroed non-differentiable lanes×rows×cols tensor
// on the tape, drawn from the tape's workspace when present.
func (tp *Tape) ZerosLanes(lanes, rows, cols int) (*Tensor, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("tensor: ZerosLanes needs lanes >= 1, got %d", lanes)
	}
	return tp.resultL(lanes, rows, cols, false), nil
}

// CopyInLanes copies data (lane-major, lanes×rows×cols values) into a
// tape-owned batched tensor — the lane-axis analogue of CopyIn. Mark it
// differentiable with Leaf to use it as a per-candidate input.
func (tp *Tape) CopyInLanes(lanes, rows, cols int, data []float64) (*Tensor, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("tensor: CopyInLanes needs lanes >= 1, got %d", lanes)
	}
	if len(data) != lanes*rows*cols {
		return nil, fmt.Errorf("tensor: %d values for %d lanes of %dx%d", len(data), lanes, rows, cols)
	}
	t := tp.resultRaw(lanes, rows, cols, false)
	copy(t.Data, data)
	return t, nil
}

// SliceLane extracts lane k of a as an unbatched [Rows×Cols] tensor; its
// backward scatters the gradient into lane k only (the other lanes of a
// receive exact +0.0, preserving bit-identity with an unbatched run).
func (tp *Tape) SliceLane(a *Tensor, k int) (*Tensor, error) {
	if k < 0 || k >= a.LaneCount() {
		return nil, fmt.Errorf("tensor: SliceLane %d of %d lanes", k, a.LaneCount())
	}
	st := a.laneStride()
	out := tp.resultRaw(1, a.Rows, a.Cols, a.requiresGrad)
	copy(out.Data, a.Data[k*st:(k+1)*st])
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			ag := a.Grad[k*st : (k+1)*st]
			for i := range out.Grad {
				ag[i] += out.Grad[i]
			}
		})
	}
	return out, nil
}

// SumLanes reduces the lane axis: out[i] = Σ_l a[l][i], summed in fixed
// lane order. The result is unbatched, so a per-lane scalar loss becomes
// the 1×1 scalar Backward requires; the backward broadcasts the gradient
// to every lane.
func (tp *Tape) SumLanes(a *Tensor) (*Tensor, error) {
	lanes := a.LaneCount()
	st := a.laneStride()
	out := tp.resultRaw(1, a.Rows, a.Cols, a.requiresGrad)
	copy(out.Data, a.Data[:st])
	for l := 1; l < lanes; l++ {
		ad := a.Data[l*st : (l+1)*st]
		for i := range out.Data {
			out.Data[i] += ad[i]
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				ag := a.Grad[l*st : (l+1)*st]
				for i := range out.Grad {
					ag[i] += out.Grad[i]
				}
			}
		})
	}
	return out, nil
}
