package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(512, 64)
	w := NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		tp.Constant(a)
		tp.Constant(w)
		if _, err := tp.MatMul(a, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatherSegmentSum(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := NewMatrix(100000, 8)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	idx := make([]int32, 200000)
	seg := make([]int32, 200000)
	for i := range idx {
		idx[i] = int32(rng.Intn(src.Rows))
		seg[i] = int32(rng.Intn(50000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		tp.Constant(src)
		g, err := tp.GatherRows(src, idx)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tp.SegmentSum(g, seg, 50000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := NewMatrix(20000, 12)
	w1 := NewMatrix(12, 8)
	w2 := NewMatrix(8, 1)
	b1 := NewMatrix(1, 8)
	b2 := NewMatrix(1, 1)
	for _, t := range []*Tensor{x, w1, w2, b1, b2} {
		for i := range t.Data {
			t.Data[i] = rng.NormFloat64() * 0.3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		tp.Constant(x)
		for _, t := range []*Tensor{w1, w2, b1, b2} {
			t.ZeroGrad()
			tp.Leaf(t)
		}
		h, err := tp.Linear(x, w1, b1)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := tp.Tanh(h)
		o, err := tp.Linear(a, w2, b2)
		if err != nil {
			b.Fatal(err)
		}
		loss, _ := tp.Sum(o)
		if err := tp.Backward(loss); err != nil {
			b.Fatal(err)
		}
	}
}
