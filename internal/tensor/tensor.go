// Package tensor is a reverse-mode automatic-differentiation engine built
// for this repository's graph-learning stack (the role PyTorch plays in
// the paper). It provides dense float64 tensors (vectors and matrices), a
// tape that records operations in execution order, elementwise and linear-
// algebra ops, the gather/scatter primitives message passing needs, and
// the Log-Sum-Exp / Softplus smoothings the paper uses for WNS/TNS.
//
// Gradients are validated against finite differences by property tests in
// this package; every op's backward rule is exercised there.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major tensor of rank 1 or 2.
type Tensor struct {
	// Rows and Cols give the shape; a vector has Cols == 1.
	Rows, Cols int
	Data       []float64
	Grad       []float64

	requiresGrad bool
	tape         *Tape
	// wsOwned marks tensors whose storage came from the tape's
	// workspace; only those may draw lazily-allocated Grad buffers
	// from the pool (persistent leaves like model parameters must
	// keep garbage-collected Grad storage across tape resets).
	wsOwned bool
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.Rows * t.Cols }

// RequiresGrad reports whether gradients flow into this tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set writes element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// GradAt returns the gradient of element (r, c), zero before Backward.
func (t *Tensor) GradAt(r, c int) float64 {
	if t.Grad == nil {
		return 0
	}
	return t.Grad[r*t.Cols+c]
}

// ensureGrad allocates the gradient buffer on demand.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		if t.wsOwned && t.tape != nil && t.tape.ws != nil {
			t.Grad = t.tape.ws.grabF64(t.Len())
			return
		}
		t.Grad = make([]float64, t.Len())
	}
}

// ZeroGrad clears accumulated gradients.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Clone returns a detached copy of values (no tape, no grad flow).
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Rows: t.Rows, Cols: t.Cols, Data: append([]float64(nil), t.Data...)}
	return c
}

// Tape records operations for reverse-mode differentiation. A tape
// built by NewTapeWS (or Workspace.Tape) draws op-result storage from
// its workspace; a plain NewTape allocates, and both produce
// byte-identical values.
type Tape struct {
	backwards []func()
	ws        *Workspace
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded operations (reuse between iterations).
func (tp *Tape) Reset() { tp.backwards = tp.backwards[:0] }

// record appends a backward step.
func (tp *Tape) record(fn func()) { tp.backwards = append(tp.backwards, fn) }

// Backward seeds d(loss)/d(loss) = 1 and propagates gradients to every
// recorded tensor. loss must be a 1×1 tensor produced on this tape.
func (tp *Tape) Backward(loss *Tensor) error {
	if loss.Len() != 1 {
		return fmt.Errorf("tensor: Backward needs a scalar, got %dx%d", loss.Rows, loss.Cols)
	}
	if loss.tape != tp {
		return fmt.Errorf("tensor: loss was not computed on this tape")
	}
	loss.ensureGrad()
	loss.Grad[0] = 1
	for i := len(tp.backwards) - 1; i >= 0; i-- {
		tp.backwards[i]()
	}
	return nil
}

// NewVector creates a non-differentiable vector (length n).
func NewVector(n int) *Tensor { return &Tensor{Rows: n, Cols: 1, Data: make([]float64, n)} }

// NewMatrix creates a non-differentiable matrix.
func NewMatrix(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (copied) as an r×c constant tensor.
func FromSlice(rows, cols int, data []float64) (*Tensor, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: %d values for %dx%d", len(data), rows, cols)
	}
	return &Tensor{Rows: rows, Cols: cols, Data: append([]float64(nil), data...)}, nil
}

// Leaf attaches a tensor to the tape as a differentiable leaf (a trainable
// parameter or an input we need gradients for, like Steiner coordinates).
func (tp *Tape) Leaf(t *Tensor) *Tensor {
	t.requiresGrad = true
	t.tape = tp
	t.ensureGrad()
	return t
}

// Constant attaches a tensor to the tape without gradient tracking.
func (tp *Tape) Constant(t *Tensor) *Tensor {
	t.tape = tp
	return t
}

// result builds the output tensor of an op, pooled when the tape has a
// workspace.
func (tp *Tape) result(rows, cols int, reqGrad bool) *Tensor {
	if tp.ws != nil {
		return tp.ws.tensor(tp, rows, cols, reqGrad)
	}
	out := &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols), tape: tp, requiresGrad: reqGrad}
	if reqGrad {
		out.ensureGrad()
	}
	return out
}

func sameShape(a, b *Tensor) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Tensor) (*Tensor, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out := tp.result(a.Rows, a.Cols, a.requiresGrad || b.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		tp.record(func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		})
	}
	return out, nil
}

// Sub returns a - b (same shape).
func (tp *Tape) Sub(a, b *Tensor) (*Tensor, error) {
	nb, err := tp.Scale(b, -1)
	if err != nil {
		return nil, err
	}
	return tp.Add(a, nb)
}

// Mul returns the elementwise product a ⊙ b.
func (tp *Tape) Mul(a, b *Tensor) (*Tensor, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	out := tp.result(a.Rows, a.Cols, a.requiresGrad || b.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		tp.record(func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		})
	}
	return out, nil
}

// Scale returns s·a.
func (tp *Tape) Scale(a *Tensor, s float64) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		})
	}
	return out, nil
}

// AddScalar returns a + s (elementwise).
func (tp *Tape) AddScalar(a *Tensor, s float64) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i]
			}
		})
	}
	return out, nil
}

// MulBroadcast returns a scaled elementwise by the 1×1 tensor s, with
// gradients flowing to both operands (used for learned scalar gains).
func (tp *Tape) MulBroadcast(a, s *Tensor) (*Tensor, error) {
	if s.Len() != 1 {
		return nil, fmt.Errorf("tensor: MulBroadcast scale must be 1x1, got %dx%d", s.Rows, s.Cols)
	}
	out := tp.result(a.Rows, a.Cols, a.requiresGrad || s.requiresGrad)
	sv := s.Data[0]
	for i := range out.Data {
		out.Data[i] = a.Data[i] * sv
	}
	if out.requiresGrad {
		tp.record(func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * sv
				}
			}
			if s.requiresGrad {
				s.ensureGrad()
				var g float64
				for i := range out.Grad {
					g += out.Grad[i] * a.Data[i]
				}
				s.Grad[0] += g
			}
		})
	}
	return out, nil
}

// MatMul returns a·b for a [m×k] and b [k×n].
func (tp *Tape) MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	out := tp.result(m, n, a.requiresGrad || b.requiresGrad)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		or := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := ar[kk]
			if av == 0 {
				continue
			}
			br := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				or[j] += av * br[j]
			}
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA = dOut · Bᵀ
				for i := 0; i < m; i++ {
					gr := out.Grad[i*n : (i+1)*n]
					agr := a.Grad[i*k : (i+1)*k]
					for kk := 0; kk < k; kk++ {
						br := b.Data[kk*n : (kk+1)*n]
						var s float64
						for j := 0; j < n; j++ {
							s += gr[j] * br[j]
						}
						agr[kk] += s
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB = Aᵀ · dOut
				for kk := 0; kk < k; kk++ {
					bgr := b.Grad[kk*n : (kk+1)*n]
					for i := 0; i < m; i++ {
						av := a.Data[i*k+kk]
						if av == 0 {
							continue
						}
						gr := out.Grad[i*n : (i+1)*n]
						for j := 0; j < n; j++ {
							bgr[j] += av * gr[j]
						}
					}
				}
			}
		})
	}
	return out, nil
}

// AddRowVector returns a + broadcast(v) where v is a 1×n (or n×1) bias
// added to every row of the m×n matrix a.
func (tp *Tape) AddRowVector(a, v *Tensor) (*Tensor, error) {
	if v.Len() != a.Cols {
		return nil, fmt.Errorf("tensor: bias of %d for %d cols", v.Len(), a.Cols)
	}
	out := tp.result(a.Rows, a.Cols, a.requiresGrad || v.requiresGrad)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + v.Data[j]
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if v.requiresGrad {
				v.ensureGrad()
				for i := 0; i < a.Rows; i++ {
					for j := 0; j < a.Cols; j++ {
						v.Grad[j] += out.Grad[i*a.Cols+j]
					}
				}
			}
		})
	}
	return out, nil
}

// ReLU returns max(0, a) elementwise.
func (tp *Tape) ReLU(a *Tensor) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		})
	}
	return out, nil
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *Tensor) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += out.Grad[i] * (1 - y*y)
			}
		})
	}
	return out, nil
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func (tp *Tape) Sigmoid(a *Tensor) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += out.Grad[i] * y * (1 - y)
			}
		})
	}
	return out, nil
}

// Softplus returns log(1+e^a) elementwise, computed stably.
func (tp *Tape) Softplus(a *Tensor) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = softplus(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] / (1 + math.Exp(-a.Data[i]))
			}
		})
	}
	return out, nil
}

func softplus(v float64) float64 {
	if v > 30 {
		return v
	}
	if v < -30 {
		return math.Exp(v)
	}
	return math.Log1p(math.Exp(v))
}

// Abs returns |a| elementwise (subgradient 0 at 0).
func (tp *Tape) Abs(a *Tensor) (*Tensor, error) {
	out := tp.result(a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = math.Abs(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			for i := range out.Grad {
				switch {
				case a.Data[i] > 0:
					a.Grad[i] += out.Grad[i]
				case a.Data[i] < 0:
					a.Grad[i] -= out.Grad[i]
				}
			}
		})
	}
	return out, nil
}

// ConcatCols concatenates matrices with equal row counts along columns.
func (tp *Tape) ConcatCols(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: empty concat")
	}
	rows := ts[0].Rows
	cols := 0
	req := false
	for _, t := range ts {
		if t.Rows != rows {
			return nil, fmt.Errorf("tensor: concat rows %d vs %d", t.Rows, rows)
		}
		cols += t.Cols
		req = req || t.requiresGrad
	}
	out := tp.result(rows, cols, req)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
		}
		off += t.Cols
	}
	if req {
		parts := append([]*Tensor(nil), ts...)
		tp.record(func() {
			off := 0
			for _, t := range parts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := 0; i < rows; i++ {
						for j := 0; j < t.Cols; j++ {
							t.Grad[i*t.Cols+j] += out.Grad[i*cols+off+j]
						}
					}
				}
				off += t.Cols
			}
		})
	}
	return out, nil
}

// ConcatRows stacks matrices with equal column counts along rows.
func (tp *Tape) ConcatRows(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: empty row concat")
	}
	cols := ts[0].Cols
	rows := 0
	req := false
	for _, t := range ts {
		if t.Cols != cols {
			return nil, fmt.Errorf("tensor: concat cols %d vs %d", t.Cols, cols)
		}
		rows += t.Rows
		req = req || t.requiresGrad
	}
	out := tp.result(rows, cols, req)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+t.Len()], t.Data)
		off += t.Len()
	}
	if req {
		parts := append([]*Tensor(nil), ts...)
		tp.record(func() {
			off := 0
			for _, t := range parts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := 0; i < t.Len(); i++ {
						t.Grad[i] += out.Grad[off+i]
					}
				}
				off += t.Len()
			}
		})
	}
	return out, nil
}

// GatherRows returns a matrix whose i-th row is a's row idx[i].
func (tp *Tape) GatherRows(a *Tensor, idx []int32) (*Tensor, error) {
	for _, r := range idx {
		if r < 0 || int(r) >= a.Rows {
			return nil, fmt.Errorf("tensor: gather row %d of %d", r, a.Rows)
		}
	}
	out := tp.result(len(idx), a.Cols, a.requiresGrad)
	for i, r := range idx {
		copy(out.Data[i*a.Cols:(i+1)*a.Cols], a.Data[int(r)*a.Cols:(int(r)+1)*a.Cols])
	}
	if out.requiresGrad {
		rows := tp.captureI32(idx)
		tp.record(func() {
			a.ensureGrad()
			for i, r := range rows {
				for j := 0; j < a.Cols; j++ {
					a.Grad[int(r)*a.Cols+j] += out.Grad[i*a.Cols+j]
				}
			}
		})
	}
	return out, nil
}

// SegmentSum sums rows of a into nOut buckets: out[seg[i]] += a[i].
func (tp *Tape) SegmentSum(a *Tensor, seg []int32, nOut int) (*Tensor, error) {
	if len(seg) != a.Rows {
		return nil, fmt.Errorf("tensor: %d segment ids for %d rows", len(seg), a.Rows)
	}
	for _, s := range seg {
		if s < 0 || int(s) >= nOut {
			return nil, fmt.Errorf("tensor: segment id %d of %d", s, nOut)
		}
	}
	out := tp.result(nOut, a.Cols, a.requiresGrad)
	for i, s := range seg {
		for j := 0; j < a.Cols; j++ {
			out.Data[int(s)*a.Cols+j] += a.Data[i*a.Cols+j]
		}
	}
	if out.requiresGrad {
		ids := tp.captureI32(seg)
		tp.record(func() {
			a.ensureGrad()
			for i, s := range ids {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += out.Grad[int(s)*a.Cols+j]
				}
			}
		})
	}
	return out, nil
}

// SegmentMean averages rows of a into nOut buckets; empty buckets stay 0.
func (tp *Tape) SegmentMean(a *Tensor, seg []int32, nOut int) (*Tensor, error) {
	sum, err := tp.SegmentSum(a, seg, nOut)
	if err != nil {
		return nil, err
	}
	counts := tp.scratchF64(nOut)
	for _, s := range seg {
		counts[s]++
	}
	inv := tp.result(nOut, a.Cols, false)
	for r := 0; r < nOut; r++ {
		c := counts[r]
		if c == 0 {
			c = 1
		}
		for j := 0; j < a.Cols; j++ {
			inv.Data[r*a.Cols+j] = 1 / c
		}
	}
	return tp.Mul(sum, inv)
}

// Sum reduces all elements to a scalar.
func (tp *Tape) Sum(a *Tensor) (*Tensor, error) {
	out := tp.result(1, 1, a.requiresGrad)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		})
	}
	return out, nil
}

// LSE computes the Log-Sum-Exp smooth maximum of a vector with
// temperature gamma (paper Eq. 5):
//
//	LSE(x) = γ·log Σ exp(x_i/γ)
//
// Computed with the usual max-shift for stability.
func (tp *Tape) LSE(a *Tensor, gamma float64) (*Tensor, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("tensor: LSE gamma %g <= 0", gamma)
	}
	if a.Len() == 0 {
		return nil, fmt.Errorf("tensor: LSE of empty tensor")
	}
	out := tp.result(1, 1, a.requiresGrad)
	maxV := a.Data[0]
	for _, v := range a.Data {
		if v > maxV {
			maxV = v
		}
	}
	var s float64
	for _, v := range a.Data {
		s += math.Exp((v - maxV) / gamma)
	}
	out.Data[0] = maxV + gamma*math.Log(s)
	if out.requiresGrad {
		tp.record(func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i, v := range a.Data {
				a.Grad[i] += g * math.Exp((v-maxV)/gamma) / s
			}
		})
	}
	return out, nil
}

// SegmentLSE computes, per segment, the Log-Sum-Exp smooth maximum of a
// column vector: out[s] = γ·log Σ_{i: seg[i]=s} exp(a_i/γ). Segments with
// no members yield 0. This is the smooth replacement for the per-pin max
// over fanin arrivals in the timing evaluator.
func (tp *Tape) SegmentLSE(a *Tensor, seg []int32, nOut int, gamma float64) (*Tensor, error) {
	if a.Cols != 1 {
		return nil, fmt.Errorf("tensor: SegmentLSE needs a column vector")
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("tensor: SegmentLSE gamma %g <= 0", gamma)
	}
	if len(seg) != a.Rows {
		return nil, fmt.Errorf("tensor: %d segment ids for %d rows", len(seg), a.Rows)
	}
	maxV := tp.scratchF64(nOut)
	seen := tp.scratchBool(nOut)
	for i, s := range seg {
		if s < 0 || int(s) >= nOut {
			return nil, fmt.Errorf("tensor: segment id %d of %d", s, nOut)
		}
		if !seen[s] || a.Data[i] > maxV[s] {
			maxV[s] = a.Data[i]
			seen[s] = true
		}
	}
	sums := tp.scratchF64(nOut)
	for i, s := range seg {
		sums[s] += math.Exp((a.Data[i] - maxV[s]) / gamma)
	}
	out := tp.result(nOut, 1, a.requiresGrad)
	for s := 0; s < nOut; s++ {
		if seen[s] {
			out.Data[s] = maxV[s] + gamma*math.Log(sums[s])
		}
	}
	if out.requiresGrad {
		ids := tp.captureI32(seg)
		tp.record(func() {
			a.ensureGrad()
			for i, s := range ids {
				w := math.Exp((a.Data[i]-maxV[s])/gamma) / sums[s]
				a.Grad[i] += out.Grad[s] * w
			}
		})
	}
	return out, nil
}

// Linear is the composite x·W + b over the tape.
func (tp *Tape) Linear(x, w, b *Tensor) (*Tensor, error) {
	y, err := tp.MatMul(x, w)
	if err != nil {
		return nil, err
	}
	return tp.AddRowVector(y, b)
}
