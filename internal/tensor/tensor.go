// Package tensor is a reverse-mode automatic-differentiation engine built
// for this repository's graph-learning stack (the role PyTorch plays in
// the paper). It provides dense float64 tensors (vectors and matrices), a
// tape that records operations in execution order, elementwise and linear-
// algebra ops, the gather/scatter primitives message passing needs, and
// the Log-Sum-Exp / Softplus smoothings the paper uses for WNS/TNS.
//
// Gradients are validated against finite differences by property tests in
// this package; every op's backward rule is exercised there.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major tensor of rank 1 or 2, optionally carrying a
// leading batch ("lane") axis for evaluating K candidate inputs in one
// recorded op. Data is laid out structure-of-arrays: lane-major, then
// row-major — element (l, r, c) lives at Data[l*Rows*Cols + r*Cols + c].
// Lanes <= 1 means unbatched; every op treats a 1-lane tensor against a
// K-lane operand as a broadcast constant shared by all lanes, and loops
// lanes outermost so each lane's floating-point evaluation order is
// bit-identical to running the unbatched op on that lane alone.
type Tensor struct {
	// Rows and Cols give the per-lane shape; a vector has Cols == 1.
	Rows, Cols int
	// Lanes is the batch-axis length; 0 and 1 both mean unbatched.
	Lanes int
	Data  []float64
	Grad  []float64

	requiresGrad bool
	tape         *Tape
	// wsOwned marks tensors whose storage came from the tape's
	// workspace; only those may draw lazily-allocated Grad buffers
	// from the pool (persistent leaves like model parameters must
	// keep garbage-collected Grad storage across tape resets).
	wsOwned bool
}

// Len returns the total element count across all lanes.
func (t *Tensor) Len() int { return t.LaneCount() * t.Rows * t.Cols }

// LaneCount returns the effective batch-axis length (1 when unbatched).
func (t *Tensor) LaneCount() int {
	if t.Lanes <= 1 {
		return 1
	}
	return t.Lanes
}

// laneStride is the element count of one lane's [Rows×Cols] block.
func (t *Tensor) laneStride() int { return t.Rows * t.Cols }

// RequiresGrad reports whether gradients flow into this tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (r, c) of lane 0.
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// LaneAt returns element (r, c) of lane l.
func (t *Tensor) LaneAt(l, r, c int) float64 { return t.Data[l*t.laneStride()+r*t.Cols+c] }

// LaneData returns the [Rows×Cols] slice backing lane l (no copy).
func (t *Tensor) LaneData(l int) []float64 {
	st := t.laneStride()
	return t.Data[l*st : (l+1)*st]
}

// LaneGrad returns the gradient slice of lane l, nil before Backward.
func (t *Tensor) LaneGrad(l int) []float64 {
	if t.Grad == nil {
		return nil
	}
	st := t.laneStride()
	return t.Grad[l*st : (l+1)*st]
}

// Set writes element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// GradAt returns the gradient of element (r, c), zero before Backward.
func (t *Tensor) GradAt(r, c int) float64 {
	if t.Grad == nil {
		return 0
	}
	return t.Grad[r*t.Cols+c]
}

// ensureGrad allocates the gradient buffer on demand.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		if t.wsOwned && t.tape != nil && t.tape.ws != nil {
			t.Grad = t.tape.ws.grabF64(t.Len())
			return
		}
		t.Grad = make([]float64, t.Len())
	}
}

// ZeroGrad clears accumulated gradients.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Clone returns a detached copy of values (no tape, no grad flow).
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Rows: t.Rows, Cols: t.Cols, Lanes: t.Lanes, Data: append([]float64(nil), t.Data...)}
	return c
}

// Tape records operations for reverse-mode differentiation. A tape
// built by NewTapeWS (or Workspace.Tape) draws op-result storage from
// its workspace; a plain NewTape allocates, and both produce
// byte-identical values.
type Tape struct {
	backwards []func()
	ws        *Workspace
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded operations (reuse between iterations).
func (tp *Tape) Reset() { tp.backwards = tp.backwards[:0] }

// record appends a backward step.
func (tp *Tape) record(fn func()) { tp.backwards = append(tp.backwards, fn) }

// Backward seeds d(loss)/d(loss) = 1 and propagates gradients to every
// recorded tensor. loss must be a 1×1 tensor produced on this tape.
func (tp *Tape) Backward(loss *Tensor) error {
	if loss.Len() != 1 {
		return fmt.Errorf("tensor: Backward needs a scalar, got %dx%d with %d lanes (reduce with SumLanes first)", loss.Rows, loss.Cols, loss.LaneCount())
	}
	if loss.tape != tp {
		return fmt.Errorf("tensor: loss was not computed on this tape")
	}
	loss.ensureGrad()
	loss.Grad[0] = 1
	for i := len(tp.backwards) - 1; i >= 0; i-- {
		tp.backwards[i]()
	}
	return nil
}

// NewVector creates a non-differentiable vector (length n).
func NewVector(n int) *Tensor { return &Tensor{Rows: n, Cols: 1, Data: make([]float64, n)} }

// NewMatrix creates a non-differentiable matrix.
func NewMatrix(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (copied) as an r×c constant tensor.
func FromSlice(rows, cols int, data []float64) (*Tensor, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: %d values for %dx%d", len(data), rows, cols)
	}
	return &Tensor{Rows: rows, Cols: cols, Data: append([]float64(nil), data...)}, nil
}

// Leaf attaches a tensor to the tape as a differentiable leaf (a trainable
// parameter or an input we need gradients for, like Steiner coordinates).
func (tp *Tape) Leaf(t *Tensor) *Tensor {
	t.requiresGrad = true
	t.tape = tp
	t.ensureGrad()
	return t
}

// Constant attaches a tensor to the tape without gradient tracking.
func (tp *Tape) Constant(t *Tensor) *Tensor {
	t.tape = tp
	return t
}

// result builds the unbatched output tensor of an op, pooled when the
// tape has a workspace.
func (tp *Tape) result(rows, cols int, reqGrad bool) *Tensor {
	return tp.resultL(1, rows, cols, reqGrad)
}

// resultL builds an op output with an explicit lane count and zeroed
// Data, laid out lane-major ([lanes×rows×cols]). Gradient buffers are
// NOT allocated here: ensureGrad materializes them on first use during
// Backward, so a forward-only pass pays nothing for them and a backward
// pass skips ops whose outputs never received a gradient.
func (tp *Tape) resultL(lanes, rows, cols int, reqGrad bool) *Tensor {
	if tp.ws != nil {
		return tp.ws.tensor(tp, lanes, rows, cols, reqGrad, true)
	}
	out := &Tensor{Rows: rows, Cols: cols, Lanes: lanes, tape: tp, requiresGrad: reqGrad}
	out.Data = make([]float64, out.Len())
	return out
}

// resultRaw is resultL for kernels that write every element of Data
// before any read: a reused workspace buffer is handed over un-zeroed,
// skipping the memclr that dominates large batched forwards. Without a
// workspace the allocator zeroes regardless.
func (tp *Tape) resultRaw(lanes, rows, cols int, reqGrad bool) *Tensor {
	if tp.ws != nil {
		return tp.ws.tensor(tp, lanes, rows, cols, reqGrad, false)
	}
	return tp.resultL(lanes, rows, cols, reqGrad)
}

func sameShape(a, b *Tensor) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// laneCompat validates the lane axes of a binary op: operands must have
// equal lane counts, or one side must be unbatched (a 1-lane broadcast
// constant shared by every lane). Returns the output lane count.
func laneCompat(a, b *Tensor) (int, error) {
	la, lb := a.LaneCount(), b.LaneCount()
	switch {
	case la == lb:
		return la, nil
	case la == 1:
		return lb, nil
	case lb == 1:
		return la, nil
	}
	return 0, fmt.Errorf("tensor: lane mismatch %d vs %d", la, lb)
}

// opLane returns operand t's data block feeding output lane l — its own
// lane l when batched, its single block when it broadcasts.
func opLane(t *Tensor, l int) []float64 {
	st := t.laneStride()
	if t.LaneCount() == 1 {
		return t.Data[:st]
	}
	return t.Data[l*st : (l+1)*st]
}

// opLaneGrad returns the grad block of operand t receiving output lane
// l's gradient (t.Grad must be allocated). A broadcast operand returns
// its single block for every lane, so looping lanes outermost
// accumulates its gradient over lanes in fixed lane order.
func opLaneGrad(t *Tensor, l int) []float64 {
	st := t.laneStride()
	if t.LaneCount() == 1 {
		return t.Grad[:st]
	}
	return t.Grad[l*st : (l+1)*st]
}

// Add returns a + b (same per-lane shape; a 1-lane operand broadcasts
// across the other's lanes).
func (tp *Tape) Add(a, b *Tensor) (*Tensor, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	lanes, err := laneCompat(a, b)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, a.Rows, a.Cols, a.requiresGrad || b.requiresGrad)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		ad, bd, od := opLane(a, l), opLane(b, l), out.Data[l*st:(l+1)*st]
		for i := range od {
			od[i] = ad[i] + bd[i]
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			if a.requiresGrad {
				a.ensureGrad()
				for l := 0; l < lanes; l++ {
					ag, og := opLaneGrad(a, l), out.Grad[l*st:(l+1)*st]
					for i := range og {
						ag[i] += og[i]
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for l := 0; l < lanes; l++ {
					bg, og := opLaneGrad(b, l), out.Grad[l*st:(l+1)*st]
					for i := range og {
						bg[i] += og[i]
					}
				}
			}
		})
	}
	return out, nil
}

// Sub returns a - b (same shape).
func (tp *Tape) Sub(a, b *Tensor) (*Tensor, error) {
	nb, err := tp.Scale(b, -1)
	if err != nil {
		return nil, err
	}
	return tp.Add(a, nb)
}

// Mul returns the elementwise product a ⊙ b (1-lane operands broadcast).
func (tp *Tape) Mul(a, b *Tensor) (*Tensor, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	lanes, err := laneCompat(a, b)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, a.Rows, a.Cols, a.requiresGrad || b.requiresGrad)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		ad, bd, od := opLane(a, l), opLane(b, l), out.Data[l*st:(l+1)*st]
		for i := range od {
			od[i] = ad[i] * bd[i]
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			if a.requiresGrad {
				a.ensureGrad()
				for l := 0; l < lanes; l++ {
					ag, bd, og := opLaneGrad(a, l), opLane(b, l), out.Grad[l*st:(l+1)*st]
					for i := range og {
						ag[i] += og[i] * bd[i]
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for l := 0; l < lanes; l++ {
					bg, ad, og := opLaneGrad(b, l), opLane(a, l), out.Grad[l*st:(l+1)*st]
					for i := range og {
						bg[i] += og[i] * ad[i]
					}
				}
			}
		})
	}
	return out, nil
}

// Scale returns s·a.
func (tp *Tape) Scale(a *Tensor, s float64) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		})
	}
	return out, nil
}

// AddScalar returns a + s (elementwise).
func (tp *Tape) AddScalar(a *Tensor, s float64) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i]
			}
		})
	}
	return out, nil
}

// MulBroadcast returns a scaled elementwise by the 1×1-per-lane tensor s,
// with gradients flowing to both operands (used for learned scalar
// gains). s may be unbatched against a batched a (the usual shared
// parameter) or carry one scalar per lane.
func (tp *Tape) MulBroadcast(a, s *Tensor) (*Tensor, error) {
	if s.Rows != 1 || s.Cols != 1 {
		return nil, fmt.Errorf("tensor: MulBroadcast scale must be 1x1, got %dx%d", s.Rows, s.Cols)
	}
	lanes, err := laneCompat(a, s)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, a.Rows, a.Cols, a.requiresGrad || s.requiresGrad)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		ad, od := opLane(a, l), out.Data[l*st:(l+1)*st]
		sv := opLane(s, l)[0]
		for i := range od {
			od[i] = ad[i] * sv
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			if a.requiresGrad {
				a.ensureGrad()
				for l := 0; l < lanes; l++ {
					ag, og := opLaneGrad(a, l), out.Grad[l*st:(l+1)*st]
					sv := opLane(s, l)[0]
					for i := range og {
						ag[i] += og[i] * sv
					}
				}
			}
			if s.requiresGrad {
				s.ensureGrad()
				for l := 0; l < lanes; l++ {
					ad, og := opLane(a, l), out.Grad[l*st:(l+1)*st]
					var g float64
					for i := range og {
						g += og[i] * ad[i]
					}
					opLaneGrad(s, l)[0] += g
				}
			}
		})
	}
	return out, nil
}

// MatMul returns a·b for a [m×k] and b [k×n], per lane; a 1-lane operand
// (shared weights against K-lane activations, or vice versa) broadcasts
// and its gradient accumulates over lanes in fixed lane order.
func (tp *Tape) MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	lanes, err := laneCompat(a, b)
	if err != nil {
		return nil, err
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	out := tp.resultRaw(lanes, m, n, a.requiresGrad || b.requiresGrad)
	st := out.laneStride()
	// Each output element accumulates av·b[kk][j] over kk in index order
	// starting from 0, exactly as the classic zeroed-output loop would —
	// the stack accumulator only removes the per-kk load/store of the
	// output row, never reorders a floating-point addition.
	var acc [32]float64
	for l := 0; l < lanes; l++ {
		ad, bd, od := opLane(a, l), opLane(b, l), out.Data[l*st:(l+1)*st]
		switch {
		case n == 1:
			for i := 0; i < m; i++ {
				ar := ad[i*k : (i+1)*k]
				var s float64
				for kk, av := range ar {
					if av == 0 {
						continue
					}
					s += av * bd[kk]
				}
				od[i] = s
			}
		case n <= len(acc):
			for i := 0; i < m; i++ {
				ar := ad[i*k : (i+1)*k]
				ac := acc[:n]
				for j := range ac {
					ac[j] = 0
				}
				for kk := 0; kk < k; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := bd[kk*n : (kk+1)*n : (kk+1)*n]
					for j := range ac {
						ac[j] += av * br[j]
					}
				}
				copy(od[i*n:(i+1)*n], ac)
			}
		default:
			for i := 0; i < m; i++ {
				ar := ad[i*k : (i+1)*k]
				or := od[i*n : (i+1)*n]
				for j := range or {
					or[j] = 0
				}
				for kk := 0; kk < k; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := bd[kk*n : (kk+1)*n]
					for j := 0; j < n; j++ {
						or[j] += av * br[j]
					}
				}
			}
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			if a.requiresGrad {
				a.ensureGrad()
				// dA = dOut · Bᵀ
				for l := 0; l < lanes; l++ {
					ag, bd, og := opLaneGrad(a, l), opLane(b, l), out.Grad[l*st:(l+1)*st]
					for i := 0; i < m; i++ {
						gr := og[i*n : (i+1)*n]
						agr := ag[i*k : (i+1)*k]
						for kk := 0; kk < k; kk++ {
							br := bd[kk*n : (kk+1)*n]
							var s float64
							for j := 0; j < n; j++ {
								s += gr[j] * br[j]
							}
							agr[kk] += s
						}
					}
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB = Aᵀ · dOut
				for l := 0; l < lanes; l++ {
					bg, ad, og := opLaneGrad(b, l), opLane(a, l), out.Grad[l*st:(l+1)*st]
					for kk := 0; kk < k; kk++ {
						bgr := bg[kk*n : (kk+1)*n]
						for i := 0; i < m; i++ {
							av := ad[i*k+kk]
							if av == 0 {
								continue
							}
							gr := og[i*n : (i+1)*n]
							for j := 0; j < n; j++ {
								bgr[j] += av * gr[j]
							}
						}
					}
				}
			}
		})
	}
	return out, nil
}

// AddRowVector returns a + broadcast(v) where v is a 1×n (or n×1) bias
// added to every row of the m×n matrix a, per lane; v may be unbatched
// (a shared bias) or carry one vector per lane.
func (tp *Tape) AddRowVector(a, v *Tensor) (*Tensor, error) {
	if v.laneStride() != a.Cols {
		return nil, fmt.Errorf("tensor: bias of %d for %d cols", v.laneStride(), a.Cols)
	}
	lanes, err := laneCompat(a, v)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, a.Rows, a.Cols, a.requiresGrad || v.requiresGrad)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		ad, vd, od := opLane(a, l), opLane(v, l), out.Data[l*st:(l+1)*st]
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				od[i*a.Cols+j] = ad[i*a.Cols+j] + vd[j]
			}
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			if a.requiresGrad {
				a.ensureGrad()
				for l := 0; l < lanes; l++ {
					ag, og := opLaneGrad(a, l), out.Grad[l*st:(l+1)*st]
					for i := range og {
						ag[i] += og[i]
					}
				}
			}
			if v.requiresGrad {
				v.ensureGrad()
				for l := 0; l < lanes; l++ {
					vg, og := opLaneGrad(v, l), out.Grad[l*st:(l+1)*st]
					for i := 0; i < a.Rows; i++ {
						for j := 0; j < a.Cols; j++ {
							vg[j] += og[i*a.Cols+j]
						}
					}
				}
			}
		})
	}
	return out, nil
}

// ReLU returns max(0, a) elementwise.
func (tp *Tape) ReLU(a *Tensor) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		})
	}
	return out, nil
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *Tensor) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += out.Grad[i] * (1 - y*y)
			}
		})
	}
	return out, nil
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func (tp *Tape) Sigmoid(a *Tensor) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += out.Grad[i] * y * (1 - y)
			}
		})
	}
	return out, nil
}

// Softplus returns log(1+e^a) elementwise, computed stably.
func (tp *Tape) Softplus(a *Tensor) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = softplus(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] / (1 + math.Exp(-a.Data[i]))
			}
		})
	}
	return out, nil
}

func softplus(v float64) float64 {
	if v > 30 {
		return v
	}
	if v < -30 {
		return math.Exp(v)
	}
	return math.Log1p(math.Exp(v))
}

// Abs returns |a| elementwise (subgradient 0 at 0).
func (tp *Tape) Abs(a *Tensor) (*Tensor, error) {
	out := tp.resultRaw(a.LaneCount(), a.Rows, a.Cols, a.requiresGrad)
	for i, v := range a.Data {
		out.Data[i] = math.Abs(v)
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for i := range out.Grad {
				switch {
				case a.Data[i] > 0:
					a.Grad[i] += out.Grad[i]
				case a.Data[i] < 0:
					a.Grad[i] -= out.Grad[i]
				}
			}
		})
	}
	return out, nil
}

// concatLanes validates the lane axes of a variadic concat: every part
// must be unbatched or share one common lane count. Returns it.
func concatLanes(ts []*Tensor) (int, error) {
	lanes := 1
	for _, t := range ts {
		if lt := t.LaneCount(); lt != 1 {
			if lanes != 1 && lanes != lt {
				return 0, fmt.Errorf("tensor: lane mismatch %d vs %d", lanes, lt)
			}
			lanes = lt
		}
	}
	return lanes, nil
}

// ConcatCols concatenates matrices with equal row counts along columns,
// per lane; unbatched parts are replicated into every lane.
func (tp *Tape) ConcatCols(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: empty concat")
	}
	rows := ts[0].Rows
	cols := 0
	req := false
	for _, t := range ts {
		if t.Rows != rows {
			return nil, fmt.Errorf("tensor: concat rows %d vs %d", t.Rows, rows)
		}
		cols += t.Cols
		req = req || t.requiresGrad
	}
	lanes, err := concatLanes(ts)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, rows, cols, req)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		od := out.Data[l*st : (l+1)*st]
		off := 0
		for _, t := range ts {
			td := opLane(t, l)
			for i := 0; i < rows; i++ {
				copy(od[i*cols+off:i*cols+off+t.Cols], td[i*t.Cols:(i+1)*t.Cols])
			}
			off += t.Cols
		}
	}
	if req {
		parts := append([]*Tensor(nil), ts...)
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			for l := 0; l < lanes; l++ {
				og := out.Grad[l*st : (l+1)*st]
				off := 0
				for _, t := range parts {
					if t.requiresGrad {
						t.ensureGrad()
						tg := opLaneGrad(t, l)
						for i := 0; i < rows; i++ {
							for j := 0; j < t.Cols; j++ {
								tg[i*t.Cols+j] += og[i*cols+off+j]
							}
						}
					}
					off += t.Cols
				}
			}
		})
	}
	return out, nil
}

// ConcatRows stacks matrices with equal column counts along rows, per
// lane; unbatched parts are replicated into every lane.
func (tp *Tape) ConcatRows(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: empty row concat")
	}
	cols := ts[0].Cols
	rows := 0
	req := false
	for _, t := range ts {
		if t.Cols != cols {
			return nil, fmt.Errorf("tensor: concat cols %d vs %d", t.Cols, cols)
		}
		rows += t.Rows
		req = req || t.requiresGrad
	}
	lanes, err := concatLanes(ts)
	if err != nil {
		return nil, err
	}
	out := tp.resultRaw(lanes, rows, cols, req)
	st := out.laneStride()
	for l := 0; l < lanes; l++ {
		od := out.Data[l*st : (l+1)*st]
		off := 0
		for _, t := range ts {
			td := opLane(t, l)
			copy(od[off:off+len(td)], td)
			off += len(td)
		}
	}
	if req {
		parts := append([]*Tensor(nil), ts...)
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			for l := 0; l < lanes; l++ {
				og := out.Grad[l*st : (l+1)*st]
				off := 0
				for _, t := range parts {
					n := t.laneStride()
					if t.requiresGrad {
						t.ensureGrad()
						tg := opLaneGrad(t, l)
						for i := 0; i < n; i++ {
							tg[i] += og[off+i]
						}
					}
					off += n
				}
			}
		})
	}
	return out, nil
}

// IndexError reports an out-of-range (or negative) index handed to a
// gather/scatter op. Hostile index vectors produce this typed error, never
// a panic; callers can unwrap it with errors.As.
type IndexError struct {
	Op    string // op that rejected the index, e.g. "GatherRows"
	Pos   int    // position in the index slice
	Index int32  // offending value
	N     int    // valid half-open range is [0, N)
}

func (e *IndexError) Error() string {
	return fmt.Sprintf("tensor: %s index %d at position %d out of range [0,%d)", e.Op, e.Index, e.Pos, e.N)
}

// checkIndices validates every index against [0, n), returning a typed
// *IndexError for the first violation.
func checkIndices(op string, idx []int32, n int) error {
	for i, r := range idx {
		if r < 0 || int(r) >= n {
			return &IndexError{Op: op, Pos: i, Index: r, N: n}
		}
	}
	return nil
}

// GatherRows returns a matrix whose i-th row is a's row idx[i], applied
// identically within every lane.
func (tp *Tape) GatherRows(a *Tensor, idx []int32) (*Tensor, error) {
	if err := checkIndices("GatherRows", idx, a.Rows); err != nil {
		return nil, err
	}
	lanes := a.LaneCount()
	out := tp.resultRaw(lanes, len(idx), a.Cols, a.requiresGrad)
	st, ast := out.laneStride(), a.laneStride()
	for l := 0; l < lanes; l++ {
		ad, od := a.Data[l*ast:(l+1)*ast], out.Data[l*st:(l+1)*st]
		for i, r := range idx {
			copy(od[i*a.Cols:(i+1)*a.Cols], ad[int(r)*a.Cols:(int(r)+1)*a.Cols])
		}
	}
	if out.requiresGrad {
		rows := tp.captureI32(idx)
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				ag, og := a.Grad[l*ast:(l+1)*ast], out.Grad[l*st:(l+1)*st]
				for i, r := range rows {
					for j := 0; j < a.Cols; j++ {
						ag[int(r)*a.Cols+j] += og[i*a.Cols+j]
					}
				}
			}
		})
	}
	return out, nil
}

// SegmentSum sums rows of a into nOut buckets per lane: out[l][seg[i]] +=
// a[l][i].
func (tp *Tape) SegmentSum(a *Tensor, seg []int32, nOut int) (*Tensor, error) {
	if len(seg) != a.Rows {
		return nil, fmt.Errorf("tensor: %d segment ids for %d rows", len(seg), a.Rows)
	}
	if err := checkIndices("SegmentSum", seg, nOut); err != nil {
		return nil, err
	}
	lanes := a.LaneCount()
	out := tp.resultL(lanes, nOut, a.Cols, a.requiresGrad)
	st, ast := out.laneStride(), a.laneStride()
	for l := 0; l < lanes; l++ {
		ad, od := a.Data[l*ast:(l+1)*ast], out.Data[l*st:(l+1)*st]
		for i, s := range seg {
			for j := 0; j < a.Cols; j++ {
				od[int(s)*a.Cols+j] += ad[i*a.Cols+j]
			}
		}
	}
	if out.requiresGrad {
		ids := tp.captureI32(seg)
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				ag, og := a.Grad[l*ast:(l+1)*ast], out.Grad[l*st:(l+1)*st]
				for i, s := range ids {
					for j := 0; j < a.Cols; j++ {
						ag[i*a.Cols+j] += og[int(s)*a.Cols+j]
					}
				}
			}
		})
	}
	return out, nil
}

// SegmentMean averages rows of a into nOut buckets; empty buckets stay 0.
func (tp *Tape) SegmentMean(a *Tensor, seg []int32, nOut int) (*Tensor, error) {
	sum, err := tp.SegmentSum(a, seg, nOut)
	if err != nil {
		return nil, err
	}
	counts := tp.scratchF64(nOut)
	for _, s := range seg {
		counts[s]++
	}
	inv := tp.resultRaw(1, nOut, a.Cols, false)
	for r := 0; r < nOut; r++ {
		c := counts[r]
		if c == 0 {
			c = 1
		}
		for j := 0; j < a.Cols; j++ {
			inv.Data[r*a.Cols+j] = 1 / c
		}
	}
	return tp.Mul(sum, inv)
}

// Sum reduces each lane to a scalar: unbatched input yields 1×1, K-lane
// input a K-lane 1×1 (one total per candidate; reduce further with
// SumLanes before Backward).
func (tp *Tape) Sum(a *Tensor) (*Tensor, error) {
	lanes := a.LaneCount()
	out := tp.resultRaw(lanes, 1, 1, a.requiresGrad)
	ast := a.laneStride()
	for l := 0; l < lanes; l++ {
		var s float64
		for _, v := range a.Data[l*ast : (l+1)*ast] {
			s += v
		}
		out.Data[l] = s
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				g := out.Grad[l]
				ag := a.Grad[l*ast : (l+1)*ast]
				for i := range ag {
					ag[i] += g
				}
			}
		})
	}
	return out, nil
}

// LSE computes the Log-Sum-Exp smooth maximum of a vector with
// temperature gamma (paper Eq. 5):
//
//	LSE(x) = γ·log Σ exp(x_i/γ)
//
// Computed with the usual max-shift for stability.
func (tp *Tape) LSE(a *Tensor, gamma float64) (*Tensor, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("tensor: LSE gamma %g <= 0", gamma)
	}
	if a.Len() == 0 {
		return nil, fmt.Errorf("tensor: LSE of empty tensor")
	}
	lanes := a.LaneCount()
	ast := a.laneStride()
	out := tp.resultRaw(lanes, 1, 1, a.requiresGrad)
	shifts := tp.scratchF64(lanes)
	sums := tp.scratchF64(lanes)
	for l := 0; l < lanes; l++ {
		ad := a.Data[l*ast : (l+1)*ast]
		maxV := ad[0]
		for _, v := range ad {
			if v > maxV {
				maxV = v
			}
		}
		var s float64
		for _, v := range ad {
			s += math.Exp((v - maxV) / gamma)
		}
		shifts[l], sums[l] = maxV, s
		out.Data[l] = maxV + gamma*math.Log(s)
	}
	if out.requiresGrad {
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				g := out.Grad[l]
				maxV, s := shifts[l], sums[l]
				ad := a.Data[l*ast : (l+1)*ast]
				ag := a.Grad[l*ast : (l+1)*ast]
				for i, v := range ad {
					ag[i] += g * math.Exp((v-maxV)/gamma) / s
				}
			}
		})
	}
	return out, nil
}

// SegmentLSE computes, per segment and per lane, the Log-Sum-Exp smooth
// maximum of a column vector: out[l][s] = γ·log Σ_{i: seg[i]=s}
// exp(a[l][i]/γ). Segments with no members yield 0. This is the smooth
// replacement for the per-pin max over fanin arrivals in the timing
// evaluator.
func (tp *Tape) SegmentLSE(a *Tensor, seg []int32, nOut int, gamma float64) (*Tensor, error) {
	if a.Cols != 1 {
		return nil, fmt.Errorf("tensor: SegmentLSE needs a column vector")
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("tensor: SegmentLSE gamma %g <= 0", gamma)
	}
	if len(seg) != a.Rows {
		return nil, fmt.Errorf("tensor: %d segment ids for %d rows", len(seg), a.Rows)
	}
	if err := checkIndices("SegmentLSE", seg, nOut); err != nil {
		return nil, err
	}
	lanes := a.LaneCount()
	ast := a.laneStride()
	maxV := tp.scratchF64(lanes * nOut)
	seen := tp.scratchBool(lanes * nOut)
	sums := tp.scratchF64(lanes * nOut)
	out := tp.resultRaw(lanes, nOut, 1, a.requiresGrad)
	for l := 0; l < lanes; l++ {
		ad := a.Data[l*ast : (l+1)*ast]
		mv, sn, sm := maxV[l*nOut:(l+1)*nOut], seen[l*nOut:(l+1)*nOut], sums[l*nOut:(l+1)*nOut]
		for i, s := range seg {
			if !sn[s] || ad[i] > mv[s] {
				mv[s] = ad[i]
				sn[s] = true
			}
		}
		for i, s := range seg {
			sm[s] += math.Exp((ad[i] - mv[s]) / gamma)
		}
		od := out.Data[l*nOut : (l+1)*nOut]
		for s := 0; s < nOut; s++ {
			if sn[s] {
				od[s] = mv[s] + gamma*math.Log(sm[s])
			} else {
				od[s] = 0
			}
		}
	}
	if out.requiresGrad {
		ids := tp.captureI32(seg)
		tp.record(func() {
			if out.Grad == nil {
				return
			}
			a.ensureGrad()
			for l := 0; l < lanes; l++ {
				ad := a.Data[l*ast : (l+1)*ast]
				ag := a.Grad[l*ast : (l+1)*ast]
				og := out.Grad[l*nOut : (l+1)*nOut]
				mv, sm := maxV[l*nOut:(l+1)*nOut], sums[l*nOut:(l+1)*nOut]
				for i, s := range ids {
					w := math.Exp((ad[i]-mv[s])/gamma) / sm[s]
					ag[i] += og[s] * w
				}
			}
		})
	}
	return out, nil
}

// Linear is the composite x·W + b over the tape.
func (tp *Tape) Linear(x, w, b *Tensor) (*Tensor, error) {
	y, err := tp.MatMul(x, w)
	if err != nil {
		return nil, err
	}
	return tp.AddRowVector(y, b)
}
