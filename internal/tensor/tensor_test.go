package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randTensor fills an r×c tensor with deterministic pseudo-random values.
func randTensor(rows, cols int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := NewMatrix(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// checkGrad builds a scalar loss from x via f and asserts the analytic
// gradient matches finite differences.
func checkGrad(t *testing.T, name string, x *Tensor, f func(tp *Tape, x *Tensor) (*Tensor, error)) {
	t.Helper()
	build := func() (*Tensor, *Tape, error) {
		tp := NewTape()
		xr := &Tensor{Rows: x.Rows, Cols: x.Cols, Data: x.Data}
		tp.Leaf(xr)
		xr.ZeroGrad()
		loss, err := f(tp, xr)
		if err != nil {
			return nil, nil, err
		}
		x.Grad = xr.Grad
		return loss, tp, nil
	}
	worst, err := GradCheck(x, build, 1e-6, 24)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if worst > 1e-4 {
		t.Errorf("%s: gradient mismatch %g", name, worst)
	}
}

func TestGradAdd(t *testing.T) {
	x := randTensor(3, 4, 1)
	other := randTensor(3, 4, 2)
	checkGrad(t, "add", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		o := tp.Constant(other.Clone())
		y, err := tp.Add(x, o)
		if err != nil {
			return nil, err
		}
		return tp.Sum(y)
	})
}

func TestGradSubMul(t *testing.T) {
	x := randTensor(4, 3, 3)
	other := randTensor(4, 3, 4)
	checkGrad(t, "sub+mul", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		o := tp.Constant(other.Clone())
		d, err := tp.Sub(x, o)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(d, d)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradMatMulLeft(t *testing.T) {
	x := randTensor(3, 5, 5)
	w := randTensor(5, 2, 6)
	checkGrad(t, "matmul-left", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		wc := tp.Constant(w.Clone())
		y, err := tp.MatMul(x, wc)
		if err != nil {
			return nil, err
		}
		return tp.Sum(y)
	})
}

func TestGradMatMulRight(t *testing.T) {
	a := randTensor(3, 5, 7)
	w := randTensor(5, 2, 8)
	checkGrad(t, "matmul-right", w, func(tp *Tape, w *Tensor) (*Tensor, error) {
		ac := tp.Constant(a.Clone())
		y, err := tp.MatMul(ac, w)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradActivations(t *testing.T) {
	for _, c := range []struct {
		name string
		op   func(tp *Tape, x *Tensor) (*Tensor, error)
	}{
		{"tanh", func(tp *Tape, x *Tensor) (*Tensor, error) { return tp.Tanh(x) }},
		{"sigmoid", func(tp *Tape, x *Tensor) (*Tensor, error) { return tp.Sigmoid(x) }},
		{"softplus", func(tp *Tape, x *Tensor) (*Tensor, error) { return tp.Softplus(x) }},
	} {
		x := randTensor(4, 4, 11)
		op := c.op
		checkGrad(t, c.name, x, func(tp *Tape, x *Tensor) (*Tensor, error) {
			y, err := op(tp, x)
			if err != nil {
				return nil, err
			}
			return tp.Sum(y)
		})
	}
}

func TestGradReLU(t *testing.T) {
	// Keep values away from the kink for finite differences.
	x := randTensor(4, 4, 12)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkGrad(t, "relu", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		y, err := tp.ReLU(x)
		if err != nil {
			return nil, err
		}
		return tp.Sum(y)
	})
}

func TestGradAbs(t *testing.T) {
	x := randTensor(4, 4, 13)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] = -0.2
		}
	}
	checkGrad(t, "abs", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		y, err := tp.Abs(x)
		if err != nil {
			return nil, err
		}
		return tp.Sum(y)
	})
}

func TestGradScaleAddScalar(t *testing.T) {
	x := randTensor(3, 3, 14)
	checkGrad(t, "scale", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		y, err := tp.Scale(x, -2.5)
		if err != nil {
			return nil, err
		}
		y, err = tp.AddScalar(y, 3)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradAddRowVectorBias(t *testing.T) {
	b := randTensor(1, 4, 15)
	a := randTensor(5, 4, 16)
	checkGrad(t, "bias", b, func(tp *Tape, b *Tensor) (*Tensor, error) {
		ac := tp.Constant(a.Clone())
		y, err := tp.AddRowVector(ac, b)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradConcatCols(t *testing.T) {
	x := randTensor(3, 2, 17)
	other := randTensor(3, 3, 18)
	checkGrad(t, "concat", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		o := tp.Constant(other.Clone())
		y, err := tp.ConcatCols(o, x, o)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradGatherSegment(t *testing.T) {
	x := randTensor(5, 3, 19)
	idx := []int32{0, 2, 2, 4, 1, 0}
	seg := []int32{0, 1, 1, 0, 2, 2}
	checkGrad(t, "gather+segsum", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		g, err := tp.GatherRows(x, idx)
		if err != nil {
			return nil, err
		}
		s, err := tp.SegmentSum(g, seg, 3)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(s, s)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradSegmentMean(t *testing.T) {
	x := randTensor(6, 2, 20)
	seg := []int32{0, 0, 0, 1, 1, 2}
	checkGrad(t, "segmean", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		s, err := tp.SegmentMean(x, seg, 3)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(s, s)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestGradLSE(t *testing.T) {
	x := randTensor(8, 1, 21)
	checkGrad(t, "lse", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		return tp.LSE(x, 0.7)
	})
}

func TestGradMulBroadcast(t *testing.T) {
	x := randTensor(3, 2, 30)
	checkGrad(t, "mulbroadcast-a", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		s, _ := FromSlice(1, 1, []float64{1.7})
		tp.Constant(s)
		y, err := tp.MulBroadcast(x, s)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
	s := randTensor(1, 1, 31)
	other := randTensor(4, 2, 32)
	checkGrad(t, "mulbroadcast-s", s, func(tp *Tape, s *Tensor) (*Tensor, error) {
		o := tp.Constant(other.Clone())
		y, err := tp.MulBroadcast(o, s)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestMulBroadcastValidation(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(NewMatrix(2, 2))
	bad := tp.Constant(NewMatrix(2, 1))
	if _, err := tp.MulBroadcast(a, bad); err == nil {
		t.Fatal("non-scalar scale accepted")
	}
}

func TestGradConcatRows(t *testing.T) {
	x := randTensor(2, 3, 22)
	other := randTensor(4, 3, 23)
	checkGrad(t, "concatrows", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		o := tp.Constant(other.Clone())
		y, err := tp.ConcatRows(o, x)
		if err != nil {
			return nil, err
		}
		sq, err := tp.Mul(y, y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(sq)
	})
}

func TestConcatRowsValues(t *testing.T) {
	tp := NewTape()
	a, _ := FromSlice(1, 2, []float64{1, 2})
	b, _ := FromSlice(2, 2, []float64{3, 4, 5, 6})
	tp.Constant(a)
	tp.Constant(b)
	y, err := tp.ConcatRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("concatrows[%d]=%g want %g", i, y.Data[i], w)
		}
	}
	if _, err := tp.ConcatRows(a, tp.Constant(NewMatrix(1, 3))); err == nil {
		t.Fatal("mismatched cols accepted")
	}
	if _, err := tp.ConcatRows(); err == nil {
		t.Fatal("empty row concat accepted")
	}
}

func TestGradSegmentLSE(t *testing.T) {
	x := randTensor(7, 1, 24)
	seg := []int32{0, 0, 1, 1, 1, 2, 0}
	checkGrad(t, "segLSE", x, func(tp *Tape, x *Tensor) (*Tensor, error) {
		y, err := tp.SegmentLSE(x, seg, 3, 0.4)
		if err != nil {
			return nil, err
		}
		return tp.Sum(y)
	})
}

func TestSegmentLSEValues(t *testing.T) {
	tp := NewTape()
	x, _ := FromSlice(4, 1, []float64{1, 5, 2, 2})
	tp.Constant(x)
	// Segment 0 holds {1,5}, segment 1 holds {2,2}, segment 2 empty.
	y, err := tp.SegmentLSE(x, []int32{0, 0, 1, 1}, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y.Data[0]-5) > 1e-6 {
		t.Fatalf("seg0=%g want ≈5", y.Data[0])
	}
	// Two equal values: LSE = v + γ·ln2.
	if math.Abs(y.Data[1]-(2+0.01*math.Log(2))) > 1e-9 {
		t.Fatalf("seg1=%g", y.Data[1])
	}
	if y.Data[2] != 0 {
		t.Fatalf("empty segment=%g want 0", y.Data[2])
	}
	// Validation errors.
	if _, err := tp.SegmentLSE(x, []int32{0, 0, 1}, 2, 0.1); err == nil {
		t.Fatal("short seg ids accepted")
	}
	if _, err := tp.SegmentLSE(x, []int32{0, 0, 1, 9}, 2, 0.1); err == nil {
		t.Fatal("out-of-range seg accepted")
	}
	if _, err := tp.SegmentLSE(x, []int32{0, 0, 1, 1}, 2, 0); err == nil {
		t.Fatal("zero gamma accepted")
	}
	m := tp.Constant(NewMatrix(2, 2))
	if _, err := tp.SegmentLSE(m, []int32{0, 1}, 2, 0.1); err == nil {
		t.Fatal("matrix input accepted")
	}
}

func TestLSEBoundsMax(t *testing.T) {
	// LSE ≥ max and LSE → max as γ → 0.
	tp := NewTape()
	x, err := FromSlice(4, 1, []float64{-3, 1.5, 0.2, 1.4})
	if err != nil {
		t.Fatal(err)
	}
	tp.Constant(x)
	for _, gamma := range []float64{2.0, 0.5, 0.01} {
		y, err := tp.LSE(x, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if y.Data[0] < 1.5 {
			t.Errorf("LSE(γ=%g)=%g below max", gamma, y.Data[0])
		}
	}
	tight, _ := tp.LSE(x, 0.01)
	if math.Abs(tight.Data[0]-1.5) > 1e-6 {
		t.Errorf("LSE(γ=0.01)=%g want ≈1.5", tight.Data[0])
	}
}

func TestLSEErrors(t *testing.T) {
	tp := NewTape()
	x := tp.Constant(NewVector(3))
	if _, err := tp.LSE(x, 0); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	empty := tp.Constant(NewVector(0))
	if _, err := tp.LSE(empty, 1); err == nil {
		t.Fatal("empty LSE accepted")
	}
}

func TestShapeErrors(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(NewMatrix(2, 3))
	b := tp.Constant(NewMatrix(3, 2))
	if _, err := tp.Add(a, b); err == nil {
		t.Fatal("mismatched add accepted")
	}
	if _, err := tp.Mul(a, b); err == nil {
		t.Fatal("mismatched mul accepted")
	}
	if _, err := tp.MatMul(a, a); err == nil {
		t.Fatal("bad matmul accepted")
	}
	if _, err := tp.AddRowVector(a, tp.Constant(NewVector(2))); err == nil {
		t.Fatal("bad bias accepted")
	}
	if _, err := tp.GatherRows(a, []int32{5}); err == nil {
		t.Fatal("out-of-range gather accepted")
	}
	if _, err := tp.SegmentSum(a, []int32{0}, 1); err == nil {
		t.Fatal("short segment ids accepted")
	}
	if _, err := tp.SegmentSum(a, []int32{0, 9}, 1); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if _, err := tp.ConcatCols(); err == nil {
		t.Fatal("empty concat accepted")
	}
	if _, err := FromSlice(2, 2, []float64{1}); err == nil {
		t.Fatal("short FromSlice accepted")
	}
}

func TestBackwardValidation(t *testing.T) {
	tp := NewTape()
	v := tp.Leaf(NewVector(3))
	if err := tp.Backward(v); err == nil {
		t.Fatal("non-scalar backward accepted")
	}
	other := NewTape()
	s := other.Constant(NewVector(1))
	if err := tp.Backward(s); err == nil {
		t.Fatal("foreign-tape backward accepted")
	}
}

func TestMatMulValues(t *testing.T) {
	tp := NewTape()
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	tp.Constant(a)
	tp.Constant(b)
	c, err := tp.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("matmul[%d]=%g want %g", i, c.Data[i], w)
		}
	}
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize ||x - target||² — Adam must approach the target.
	target := []float64{1.5, -2.0, 0.5}
	x := NewVector(3)
	opt := NewAdam(0.05, []*Tensor{x})
	for it := 0; it < 500; it++ {
		tp := NewTape()
		tp.Leaf(x)
		opt.ZeroGrad()
		tgt, _ := FromSlice(3, 1, target)
		tp.Constant(tgt)
		d, _ := tp.Sub(x, tgt)
		sq, _ := tp.Mul(d, d)
		loss, _ := tp.Sum(sq)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	for i, w := range target {
		if math.Abs(x.Data[i]-w) > 0.05 {
			t.Fatalf("Adam failed to converge: x[%d]=%g want %g", i, x.Data[i], w)
		}
	}
}

func TestXavierInitRange(t *testing.T) {
	w := NewMatrix(10, 20)
	XavierInit(w, rand.New(rand.NewSource(1)))
	limit := math.Sqrt(6.0 / 30.0)
	nonzero := false
	for _, v := range w.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %g exceeds limit %g", v, limit)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("Xavier produced all zeros")
	}
}

func TestCheckFinite(t *testing.T) {
	ok := NewVector(2)
	if err := CheckFinite(ok); err != nil {
		t.Fatal(err)
	}
	bad := NewVector(2)
	bad.Data[1] = math.NaN()
	if err := CheckFinite(bad); err == nil {
		t.Fatal("NaN accepted")
	}
	inf := NewVector(1)
	inf.Data[0] = math.Inf(1)
	if err := CheckFinite(inf); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestLinearComposite(t *testing.T) {
	tp := NewTape()
	x, _ := FromSlice(1, 2, []float64{1, 2})
	w, _ := FromSlice(2, 2, []float64{1, 0, 0, 1})
	b, _ := FromSlice(1, 2, []float64{10, 20})
	tp.Constant(x)
	tp.Constant(w)
	tp.Constant(b)
	y, err := tp.Linear(x, w, b)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 11 || y.Data[1] != 22 {
		t.Fatalf("linear=%v want [11 22]", y.Data)
	}
}

func TestTapeResetReuse(t *testing.T) {
	tp := NewTape()
	x := tp.Leaf(NewVector(2))
	x.Data[0], x.Data[1] = 1, 2
	sq, _ := tp.Mul(x, x)
	loss, _ := tp.Sum(sq)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	g0 := append([]float64(nil), x.Grad...)
	tp.Reset()
	x.ZeroGrad()
	tp.Leaf(x)
	sq2, _ := tp.Mul(x, x)
	loss2, _ := tp.Sum(sq2)
	if err := tp.Backward(loss2); err != nil {
		t.Fatal(err)
	}
	for i := range g0 {
		if x.Grad[i] != g0[i] {
			t.Fatal("reset tape produced different gradients")
		}
	}
}
