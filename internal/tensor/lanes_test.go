package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsteiner/internal/check"
)

// lanedRand fills a lanes×rows×cols tensor with deterministic
// pseudo-random values.
func lanedRand(lanes, rows, cols int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := &Tensor{Rows: rows, Cols: cols, Lanes: lanes, Data: make([]float64, lanes*rows*cols)}
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// checkGradK builds a loss from a (possibly batched) leaf x via f,
// reducing whatever f returns to a scalar with SumLanes+Sum, and asserts
// the analytic gradient matches finite differences across every lane.
func checkGradK(t *testing.T, name string, x *Tensor, f func(tp *Tape, x *Tensor) (*Tensor, error)) {
	t.Helper()
	build := func() (*Tensor, *Tape, error) {
		tp := NewTape()
		xr := &Tensor{Rows: x.Rows, Cols: x.Cols, Lanes: x.Lanes, Data: x.Data}
		tp.Leaf(xr)
		xr.ZeroGrad()
		y, err := f(tp, xr)
		if err != nil {
			return nil, nil, err
		}
		flat, err := tp.SumLanes(y)
		if err != nil {
			return nil, nil, err
		}
		loss, err := tp.Sum(flat)
		if err != nil {
			return nil, nil, err
		}
		x.Grad = xr.Grad
		return loss, tp, nil
	}
	worst, err := GradCheck(x, build, 1e-6, 24)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if worst > 1e-4 {
		t.Errorf("%s: gradient mismatch %g", name, worst)
	}
}

// TestGradLanesPerOp gradchecks every SoA kernel on batched inputs at
// K ∈ {1, 3}, with 1-lane constants exercising the broadcast paths.
func TestGradLanesPerOp(t *testing.T) {
	for _, K := range []int{1, 3} {
		other := randTensor(4, 3, 100) // 1-lane broadcast operand
		cases := []struct {
			name string
			x    *Tensor
			f    func(tp *Tape, x *Tensor) (*Tensor, error)
		}{
			{"add-bcast", lanedRand(K, 4, 3, 1), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Add(x, tp.Constant(other.Clone()))
			}},
			{"sub-bcast", lanedRand(K, 4, 3, 2), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Sub(x, tp.Constant(other.Clone()))
			}},
			{"mul-bcast", lanedRand(K, 4, 3, 3), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Mul(x, tp.Constant(other.Clone()))
			}},
			{"mul-self", lanedRand(K, 4, 3, 4), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Mul(x, x)
			}},
			{"scale-addscalar", lanedRand(K, 4, 3, 5), func(tp *Tape, x *Tensor) (*Tensor, error) {
				y, err := tp.Scale(x, -1.7)
				if err != nil {
					return nil, err
				}
				return tp.AddScalar(y, 0.3)
			}},
			{"mulbroadcast-shared-s", lanedRand(K, 4, 3, 6), func(tp *Tape, x *Tensor) (*Tensor, error) {
				s, _ := FromSlice(1, 1, []float64{1.3})
				y, err := tp.MulBroadcast(x, tp.Constant(s))
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"mulbroadcast-perlane-s", lanedRand(K, 1, 1, 7), func(tp *Tape, x *Tensor) (*Tensor, error) {
				a := tp.Constant(lanedRand(K, 4, 3, 107))
				y, err := tp.MulBroadcast(a, x)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"matmul-shared-weight", lanedRand(K, 4, 3, 8), func(tp *Tape, x *Tensor) (*Tensor, error) {
				w := tp.Constant(randTensor(3, 2, 108))
				y, err := tp.MatMul(x, w)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"matmul-weight-grad", randTensor(3, 2, 9), func(tp *Tape, x *Tensor) (*Tensor, error) {
				a := tp.Constant(lanedRand(K, 4, 3, 109))
				y, err := tp.MatMul(a, x)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"addrowvector-shared-bias", randTensor(1, 3, 10), func(tp *Tape, x *Tensor) (*Tensor, error) {
				a := tp.Constant(lanedRand(K, 4, 3, 110))
				y, err := tp.AddRowVector(a, x)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"linear", lanedRand(K, 4, 3, 11), func(tp *Tape, x *Tensor) (*Tensor, error) {
				w := tp.Constant(randTensor(3, 2, 111))
				b := tp.Constant(randTensor(1, 2, 112))
				y, err := tp.Linear(x, w, b)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"tanh", lanedRand(K, 4, 3, 12), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Tanh(x)
			}},
			{"sigmoid", lanedRand(K, 4, 3, 13), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Sigmoid(x)
			}},
			{"softplus", lanedRand(K, 4, 3, 14), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.Softplus(x)
			}},
			{"concatcols-bcast", lanedRand(K, 4, 2, 17), func(tp *Tape, x *Tensor) (*Tensor, error) {
				o := tp.Constant(other.Clone())
				y, err := tp.ConcatCols(o, x)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"concatrows-bcast", lanedRand(K, 2, 3, 18), func(tp *Tape, x *Tensor) (*Tensor, error) {
				o := tp.Constant(other.Clone())
				y, err := tp.ConcatRows(o, x)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"gather-segsum", lanedRand(K, 5, 3, 19), func(tp *Tape, x *Tensor) (*Tensor, error) {
				g, err := tp.GatherRows(x, []int32{0, 2, 2, 4, 1, 0})
				if err != nil {
					return nil, err
				}
				s, err := tp.SegmentSum(g, []int32{0, 1, 1, 0, 2, 2}, 3)
				if err != nil {
					return nil, err
				}
				return tp.Mul(s, s)
			}},
			{"segmean", lanedRand(K, 6, 2, 20), func(tp *Tape, x *Tensor) (*Tensor, error) {
				s, err := tp.SegmentMean(x, []int32{0, 0, 0, 1, 1, 2}, 3)
				if err != nil {
					return nil, err
				}
				return tp.Mul(s, s)
			}},
			{"lse", lanedRand(K, 8, 1, 21), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.LSE(x, 0.7)
			}},
			{"seglse", lanedRand(K, 7, 1, 24), func(tp *Tape, x *Tensor) (*Tensor, error) {
				return tp.SegmentLSE(x, []int32{0, 0, 1, 1, 1, 2, 0}, 3, 0.4)
			}},
			{"slicelane", lanedRand(K, 4, 3, 25), func(tp *Tape, x *Tensor) (*Tensor, error) {
				y, err := tp.SliceLane(x, K-1)
				if err != nil {
					return nil, err
				}
				return tp.Mul(y, y)
			}},
			{"sumlanes", lanedRand(K, 4, 3, 26), func(tp *Tape, x *Tensor) (*Tensor, error) {
				y, err := tp.Mul(x, x)
				if err != nil {
					return nil, err
				}
				return tp.SumLanes(y)
			}},
			{"sum-per-lane", lanedRand(K, 4, 3, 27), func(tp *Tape, x *Tensor) (*Tensor, error) {
				y, err := tp.Mul(x, x)
				if err != nil {
					return nil, err
				}
				return tp.Sum(y)
			}},
		}
		for _, c := range cases {
			x, f := c.x, c.f
			t.Run(c.name, func(t *testing.T) {
				checkGradK(t, c.name, x, f)
			})
		}
		// ReLU and Abs need values away from the kink.
		relu := lanedRand(K, 4, 3, 15)
		for i := range relu.Data {
			if math.Abs(relu.Data[i]) < 0.05 {
				relu.Data[i] = 0.1
			}
		}
		checkGradK(t, "relu", relu, func(tp *Tape, x *Tensor) (*Tensor, error) { return tp.ReLU(x) })
		abs := lanedRand(K, 4, 3, 16)
		for i := range abs.Data {
			if math.Abs(abs.Data[i]) < 0.05 {
				abs.Data[i] = -0.2
			}
		}
		checkGradK(t, "abs", abs, func(tp *Tape, x *Tensor) (*Tensor, error) { return tp.Abs(x) })
	}
}

// laneNet runs a composite network (gather → linear → tanh → segment-sum
// → segment-LSE-style reduction) on the given leaf and returns the
// per-lane output plus the tape.
func laneNet(tp *Tape, x *Tensor) (*Tensor, error) {
	w, _ := FromSlice(3, 1, []float64{0.4, -0.7, 0.2})
	b, _ := FromSlice(1, 1, []float64{0.05})
	tp.Constant(w)
	tp.Constant(b)
	g, err := tp.GatherRows(x, []int32{0, 2, 2, 4, 1, 0})
	if err != nil {
		return nil, err
	}
	h, err := tp.Linear(g, w, b)
	if err != nil {
		return nil, err
	}
	h, err = tp.Tanh(h)
	if err != nil {
		return nil, err
	}
	s, err := tp.SegmentSum(h, []int32{0, 1, 1, 0, 2, 2}, 3)
	if err != nil {
		return nil, err
	}
	return tp.SegmentLSE(s, []int32{0, 0, 1}, 2, 0.3)
}

// TestLaneBitwiseMatchesUnbatched is the kernel-level byte-equivalence
// gate: lane k of a K-lane forward/backward must be bit-identical to an
// unbatched run on lane k's block alone, on both the allocating and the
// workspace paths.
func TestLaneBitwiseMatchesUnbatched(t *testing.T) {
	const K, rows, cols = 3, 5, 3
	master := lanedRand(K, rows, cols, 33)
	run := func(tp *Tape, x *Tensor) (*Tensor, error) {
		y, err := laneNet(tp, x)
		if err != nil {
			return nil, err
		}
		flat, err := tp.SumLanes(y)
		if err != nil {
			return nil, err
		}
		return tp.Sum(flat)
	}

	for _, ws := range []*Workspace{nil, NewWorkspace()} {
		name := "alloc"
		if ws != nil {
			name = "workspace"
		}
		var tp *Tape
		if ws != nil {
			tp = ws.Tape()
		} else {
			tp = NewTape()
		}
		x := &Tensor{Rows: rows, Cols: cols, Lanes: K, Data: append([]float64(nil), master.Data...)}
		tp.Leaf(x)
		y, err := laneNet(tp, x)
		if err != nil {
			t.Fatal(err)
		}
		batchedVals := append([]float64(nil), y.Data...)
		loss, err := run(tp, x)
		if err != nil {
			t.Fatal(err)
		}
		_ = loss
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		batchedGrad := append([]float64(nil), x.Grad...)

		st := rows * cols
		yst := y.laneStride()
		for k := 0; k < K; k++ {
			stp := NewTape()
			xk := &Tensor{Rows: rows, Cols: cols, Data: append([]float64(nil), master.Data[k*st:(k+1)*st]...)}
			stp.Leaf(xk)
			yk, err := laneNet(stp, xk)
			if err != nil {
				t.Fatal(err)
			}
			for i := range yk.Data {
				if yk.Data[i] != batchedVals[k*yst+i] {
					t.Fatalf("%s: lane %d value[%d]: batched %v != sequential %v",
						name, k, i, batchedVals[k*yst+i], yk.Data[i])
				}
			}
			lk, err := stp.Sum(yk)
			if err != nil {
				t.Fatal(err)
			}
			if err := stp.Backward(lk); err != nil {
				t.Fatal(err)
			}
			for i := range xk.Grad {
				if xk.Grad[i] != batchedGrad[k*st+i] {
					t.Fatalf("%s: lane %d grad[%d]: batched %v != sequential %v",
						name, k, i, batchedGrad[k*st+i], xk.Grad[i])
				}
			}
		}
	}
}

// TestSliceLaneValues pins the slicing/reduction semantics of the lane
// axis ops and their validation errors.
func TestSliceLaneValues(t *testing.T) {
	tp := NewTape()
	x, err := tp.CopyInLanes(2, 2, 1, []float64{1, 2, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := tp.SliceLane(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Data[0] != 10 || l1.Data[1] != 20 || l1.LaneCount() != 1 {
		t.Fatalf("SliceLane(1)=%v lanes=%d", l1.Data, l1.LaneCount())
	}
	total, err := tp.SumLanes(x)
	if err != nil {
		t.Fatal(err)
	}
	if total.Data[0] != 11 || total.Data[1] != 22 {
		t.Fatalf("SumLanes=%v", total.Data)
	}
	if _, err := tp.SliceLane(x, 2); err == nil {
		t.Fatal("out-of-range lane accepted")
	}
	if _, err := tp.SliceLane(x, -1); err == nil {
		t.Fatal("negative lane accepted")
	}
	if _, err := tp.CopyInLanes(2, 2, 1, []float64{1}); err == nil {
		t.Fatal("short CopyInLanes accepted")
	}
	if _, err := tp.CopyInLanes(0, 2, 1, nil); err == nil {
		t.Fatal("zero-lane CopyInLanes accepted")
	}
	if _, err := tp.ZerosLanes(0, 1, 1); err == nil {
		t.Fatal("zero-lane ZerosLanes accepted")
	}
	z, err := tp.ZerosLanes(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 6 || z.LaneCount() != 3 {
		t.Fatalf("ZerosLanes len=%d lanes=%d", z.Len(), z.LaneCount())
	}
}

// TestLaneMismatchRejected pins the broadcast rule: differing lane counts
// are only compatible when one side is unbatched.
func TestLaneMismatchRejected(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(lanedRand(2, 2, 2, 40))
	b := tp.Constant(lanedRand(3, 2, 2, 41))
	if _, err := tp.Add(a, b); err == nil {
		t.Fatal("2-lane + 3-lane accepted")
	}
	if _, err := tp.MatMul(a, b); err == nil {
		t.Fatal("2-lane · 3-lane accepted")
	}
	if _, err := tp.ConcatCols(a, b); err == nil {
		t.Fatal("2-lane ++ 3-lane accepted")
	}
	// K-lane pseudo-scalar must be rejected by Backward.
	s := tp.Constant(lanedRand(2, 1, 1, 42))
	if err := tp.Backward(s); err == nil {
		t.Fatal("multi-lane scalar backward accepted")
	}
}

// hostileIdx is a generator of adversarial index vectors: in-range,
// negative, just-past-the-end and extreme int32 values.
func hostileIdx(n int) check.Gen[[]int] {
	return check.SliceOf(0, 8, check.OneOf(
		check.Int(0, n-1),
		check.Int(-3, n+3),
		check.Const(int(math.MinInt32)),
		check.Const(int(math.MaxInt32)),
	))
}

// TestHostileIndicesTyped feeds hostile index vectors to
// GatherRows/SegmentSum/SegmentLSE and asserts they never panic, reject
// exactly the out-of-range inputs, and report them via *IndexError.
func TestHostileIndicesTyped(t *testing.T) {
	const n = 5
	check.Run(t, hostileIdx(n), func(raw []int) error {
		idx := make([]int32, len(raw))
		firstBad := -1
		for i, v := range raw {
			idx[i] = int32(v)
			if firstBad < 0 && (v < 0 || v >= n) {
				firstBad = i
			}
		}
		verify := func(op string, err error) error {
			if firstBad < 0 {
				if err != nil {
					return err
				}
				return nil
			}
			var ie *IndexError
			if !errors.As(err, &ie) {
				return fmt.Errorf("%s: want *IndexError for %v, got %v", op, raw, err)
			}
			if ie.Op != op || ie.Pos != firstBad || ie.Index != idx[firstBad] || ie.N != n {
				return fmt.Errorf("%s: got %+v, want pos %d index %d n %d", op, ie, firstBad, idx[firstBad], n)
			}
			return nil
		}

		tp := NewTape()
		a := tp.Constant(randTensor(n, 2, 7))
		_, err := tp.GatherRows(a, idx)
		if verr := verify("GatherRows", err); verr != nil {
			return verr
		}

		rows := tp.Constant(randTensor(len(idx), 2, 8))
		_, err = tp.SegmentSum(rows, idx, n)
		if verr := verify("SegmentSum", err); verr != nil {
			return verr
		}

		col := tp.Constant(randTensor(len(idx), 1, 9))
		_, err = tp.SegmentLSE(col, idx, n, 0.5)
		if verr := verify("SegmentLSE", err); verr != nil {
			return verr
		}
		return nil
	})
}
