package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Adam implements the Adam stochastic optimizer over a set of parameter
// tensors (used to train the timing evaluator; the Steiner refinement loop
// uses its own single-step variant per paper Eq. 7).
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	params       []*Tensor
	m, v         [][]float64
	step         int
}

// NewAdam builds an optimizer over params with the given learning rate.
func NewAdam(lr float64, params []*Tensor) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Len())
		a.v[i] = make([]float64, p.Len())
	}
	return a
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ZeroGrad clears the gradients of every parameter.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// XavierInit fills t with Xavier/Glorot-uniform values for a fanIn×fanOut
// weight matrix, using the supplied RNG for determinism.
func XavierInit(t *Tensor, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// GradCheck compares the analytic gradient of loss w.r.t. x against
// central finite differences. build must recompute the loss from scratch
// on a fresh tape each call (x's Data may be perturbed between calls).
// Returns the max absolute deviation over sampled elements.
func GradCheck(x *Tensor, build func() (*Tensor, *Tape, error), eps float64, samples int) (float64, error) {
	loss, tape, err := build()
	if err != nil {
		return 0, err
	}
	if err := tape.Backward(loss); err != nil {
		return 0, err
	}
	analytic := append([]float64(nil), x.Grad...)

	n := x.Len()
	if samples > n || samples <= 0 {
		samples = n
	}
	worst := 0.0
	for s := 0; s < samples; s++ {
		i := s * n / samples
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _, err := build()
		if err != nil {
			return 0, err
		}
		x.Data[i] = orig - eps
		lm, _, err := build()
		if err != nil {
			return 0, err
		}
		x.Data[i] = orig
		numeric := (lp.Data[0] - lm.Data[0]) / (2 * eps)
		if d := math.Abs(numeric - analytic[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// CheckFinite returns an error if any element is NaN or Inf — a guard the
// training loop runs on losses.
func CheckFinite(t *Tensor) error {
	for i, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tensor: non-finite value %g at %d", v, i)
		}
	}
	return nil
}
