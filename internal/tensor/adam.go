package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Adam implements the Adam stochastic optimizer over a set of parameter
// tensors (used to train the timing evaluator; the Steiner refinement loop
// uses its own single-step variant per paper Eq. 7).
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	params       []*Tensor
	m, v         [][]float64
	step         int
}

// NewAdam builds an optimizer over params with the given learning rate.
func NewAdam(lr float64, params []*Tensor) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Len())
		a.v[i] = make([]float64, p.Len())
	}
	return a
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ZeroGrad clears the gradients of every parameter.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// AdamState is a deep copy of an optimizer's mutable state — the step
// count and first/second moments — in Params() order. Together with a
// parameter snapshot it makes a training trajectory resumable
// byte-identically (internal/guard checkpoints serialize it as JSON).
type AdamState struct {
	Step int
	M, V [][]float64
}

// Snapshot deep-copies the optimizer state for checkpointing.
func (a *Adam) Snapshot() AdamState {
	st := AdamState{Step: a.step, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i]...)
		st.V[i] = append([]float64(nil), a.v[i]...)
	}
	return st
}

// Restore overwrites the optimizer state from a snapshot taken on an
// optimizer over identically-shaped parameters.
func (a *Adam) Restore(st AdamState) error {
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("tensor: adam state has %d/%d moment slices, want %d", len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != len(a.m[i]) || len(st.V[i]) != len(a.v[i]) {
			return fmt.Errorf("tensor: adam moment %d length mismatch", i)
		}
	}
	a.step = st.Step
	for i := range a.m {
		copy(a.m[i], st.M[i])
		copy(a.v[i], st.V[i])
	}
	return nil
}

// XavierInit fills t with Xavier/Glorot-uniform values for a fanIn×fanOut
// weight matrix, using the supplied RNG for determinism.
func XavierInit(t *Tensor, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// GradCheck compares the analytic gradient of loss w.r.t. x against
// central finite differences. build must recompute the loss from scratch
// on a fresh tape each call (x's Data may be perturbed between calls).
// Returns the max absolute deviation over sampled elements.
func GradCheck(x *Tensor, build func() (*Tensor, *Tape, error), eps float64, samples int) (float64, error) {
	loss, tape, err := build()
	if err != nil {
		return 0, err
	}
	if err := tape.Backward(loss); err != nil {
		return 0, err
	}
	analytic := append([]float64(nil), x.Grad...)

	n := x.Len()
	if samples > n || samples <= 0 {
		samples = n
	}
	worst := 0.0
	for s := 0; s < samples; s++ {
		i := s * n / samples
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp, _, err := build()
		if err != nil {
			return 0, err
		}
		lossP := lp.Data[0] // read before the next build: a workspace tape reclaims lp's storage
		x.Data[i] = orig - eps
		lm, _, err := build()
		if err != nil {
			return 0, err
		}
		lossM := lm.Data[0]
		x.Data[i] = orig
		numeric := (lossP - lossM) / (2 * eps)
		if d := math.Abs(numeric - analytic[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// CheckFinite returns an error if any element is NaN or Inf — a guard the
// training loop runs on losses.
func CheckFinite(t *Tensor) error {
	for i, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tensor: non-finite value %g at %d", v, i)
		}
	}
	return nil
}
