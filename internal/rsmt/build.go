package rsmt

import (
	"math/rand"
	"sort"

	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
	"tsteiner/internal/par"
)

// Options tunes tree construction.
type Options struct {
	// I1SLimit is the largest distinct-terminal count handled by iterated
	// 1-Steiner; larger nets use MST + median Steinerization.
	I1SLimit int
	// Workers bounds the goroutines used for per-net construction
	// (0 = GOMAXPROCS, 1 = serial). Construction is a pure function of
	// each net, so the forest is identical for every worker count.
	Workers int
}

// DefaultOptions returns the construction settings used by all flows.
func DefaultOptions() Options { return Options{I1SLimit: 10} }

// BuildAll constructs one Steiner tree per net from the placed design.
// Nets are independent, so trees are built in parallel on opt.Workers
// goroutines and collected in net order.
func BuildAll(d *netlist.Design, opt Options) (*Forest, error) {
	if opt.I1SLimit < 3 {
		opt.I1SLimit = 3
	}
	trees, err := par.Map(opt.Workers, d.Nets, func(ni int, _ netlist.Net) (*Tree, error) {
		return buildNet(d, netlist.NetID(ni), opt), nil
	})
	if err != nil {
		return nil, err
	}
	f := &Forest{Trees: trees}
	if err := f.Validate(d); err != nil {
		return nil, err
	}
	return f, nil
}

// buildNet constructs the tree for one net.
func buildNet(d *netlist.Design, ni netlist.NetID, opt Options) *Tree {
	net := d.Net(ni)
	pins := make([]netlist.PinID, 0, net.NumPins())
	pins = append(pins, net.Driver)
	pins = append(pins, net.Sinks...)

	// Unique geometric terminals; representative pin per position, driver
	// first so the driver's position is geo terminal 0.
	posIndex := map[geom.Point]int{}
	var terms []geom.Point
	repPin := []netlist.PinID{}
	extra := map[int][]netlist.PinID{} // geo index -> co-located pins
	for _, pid := range pins {
		p := d.Pin(pid).Pos
		if gi, ok := posIndex[p]; ok {
			extra[gi] = append(extra[gi], pid)
			continue
		}
		posIndex[p] = len(terms)
		terms = append(terms, p)
		repPin = append(repPin, pid)
	}

	var topo *topology
	switch {
	case len(terms) == 1:
		topo = &topology{pts: terms}
	case len(terms) == 2:
		topo = &topology{pts: terms, edges: [][2]int{{0, 1}}}
	case len(terms) <= opt.I1SLimit:
		topo = iterated1Steiner(terms)
	default:
		topo = medianSteinerize(terms)
	}
	topo.prune(len(terms))

	// Assemble the Tree: pin nodes first (driver at 0), then Steiner
	// nodes, then zero-length attachments for co-located pins.
	t := &Tree{Net: ni}
	geoToNode := make([]int32, len(topo.pts))
	for gi := 0; gi < len(terms); gi++ {
		geoToNode[gi] = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{Kind: PinNode, Pin: repPin[gi], Pos: topo.pts[gi].ToF()})
	}
	for gi := len(terms); gi < len(topo.pts); gi++ {
		geoToNode[gi] = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{Kind: SteinerNode, Pos: topo.pts[gi].ToF()})
	}
	for _, e := range topo.edges {
		t.Edges = append(t.Edges, Edge{A: geoToNode[e[0]], B: geoToNode[e[1]]})
	}
	// Iterate geo indices in order (not map order) for determinism.
	for gi := 0; gi < len(terms); gi++ {
		for _, pid := range extra[gi] {
			id := int32(len(t.Nodes))
			t.Nodes = append(t.Nodes, Node{Kind: PinNode, Pin: pid, Pos: terms[gi].ToF()})
			t.Edges = append(t.Edges, Edge{A: geoToNode[gi], B: id})
		}
	}
	// Deterministic edge order regardless of map iteration above.
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].A != t.Edges[j].A {
			return t.Edges[i].A < t.Edges[j].A
		}
		return t.Edges[i].B < t.Edges[j].B
	})
	return t
}

// topology is the geometric tree under construction: the first k points
// are terminals; later points are Steiner candidates.
type topology struct {
	pts   []geom.Point
	edges [][2]int
}

func (tp *topology) wirelength() int {
	sum := 0
	for _, e := range tp.edges {
		sum += geom.ManhattanDist(tp.pts[e[0]], tp.pts[e[1]])
	}
	return sum
}

// prune repeatedly removes Steiner leaves and splices degree-2 Steiner
// nodes (replacing a–s–b with a–b, which never lengthens a Manhattan
// tree), then compacts node indices. Terminal nodes (< nTerms) are kept.
func (tp *topology) prune(nTerms int) {
	for {
		deg := make([]int, len(tp.pts))
		for _, e := range tp.edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		changed := false
		for v := nTerms; v < len(tp.pts); v++ {
			switch deg[v] {
			case 0:
				continue // already detached; compaction removes it
			case 1:
				tp.removeEdgesOf(v)
				changed = true
			case 2:
				var nb []int
				for _, e := range tp.edges {
					if e[0] == v {
						nb = append(nb, e[1])
					} else if e[1] == v {
						nb = append(nb, e[0])
					}
				}
				tp.removeEdgesOf(v)
				tp.edges = append(tp.edges, [2]int{nb[0], nb[1]})
				changed = true
			}
			if changed {
				break // degrees are stale; restart the scan
			}
		}
		if !changed {
			break
		}
	}
	tp.compact(nTerms)
}

func (tp *topology) removeEdgesOf(v int) {
	out := tp.edges[:0]
	for _, e := range tp.edges {
		if e[0] != v && e[1] != v {
			out = append(out, e)
		}
	}
	tp.edges = out
}

// compact drops Steiner points with no incident edge.
func (tp *topology) compact(nTerms int) {
	used := make([]bool, len(tp.pts))
	for i := 0; i < nTerms; i++ {
		used[i] = true
	}
	for _, e := range tp.edges {
		used[e[0]] = true
		used[e[1]] = true
	}
	remap := make([]int, len(tp.pts))
	var pts []geom.Point
	for i, p := range tp.pts {
		if used[i] {
			remap[i] = len(pts)
			pts = append(pts, p)
		} else {
			remap[i] = -1
		}
	}
	for i := range tp.edges {
		tp.edges[i][0] = remap[tp.edges[i][0]]
		tp.edges[i][1] = remap[tp.edges[i][1]]
	}
	tp.pts = pts
}

// mstEdges computes a Manhattan-metric minimum spanning tree over pts with
// Prim's algorithm, returning edge list and total cost.
func mstEdges(pts []geom.Point) ([][2]int, int) {
	n := len(pts)
	if n <= 1 {
		return nil, 0
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	parent := make([]int, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[0] = 0
	total := 0
	edges := make([][2]int, 0, n-1)
	for iter := 0; iter < n; iter++ {
		best, bestD := -1, inf
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		inTree[best] = true
		if parent[best] >= 0 {
			edges = append(edges, [2]int{parent[best], best})
			total += bestD
		}
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if dd := geom.ManhattanDist(pts[best], pts[v]); dd < dist[v] {
					dist[v] = dd
					parent[v] = best
				}
			}
		}
	}
	return edges, total
}

// iterated1Steiner runs the Kahng–Robins heuristic: repeatedly add the
// Hanan-grid point whose inclusion most reduces the MST cost.
func iterated1Steiner(terms []geom.Point) *topology {
	pts := append([]geom.Point(nil), terms...)
	_, baseCost := mstEdges(pts)
	maxSteiner := len(terms) - 2
	for s := 0; s < maxSteiner; s++ {
		cands := geom.HananGrid(pts)
		existing := map[geom.Point]bool{}
		for _, p := range pts {
			existing[p] = true
		}
		bestGain := 0
		var bestPt geom.Point
		for _, c := range cands {
			if existing[c] {
				continue
			}
			trial := append(pts, c)
			_, cost := mstEdges(trial)
			if gain := baseCost - cost; gain > bestGain {
				bestGain = gain
				bestPt = c
			}
		}
		if bestGain <= 0 {
			break
		}
		pts = append(pts, bestPt)
		baseCost -= bestGain
	}
	edges, _ := mstEdges(pts)
	return &topology{pts: pts, edges: edges}
}

// medianSteinerize computes the MST and then repeatedly inserts the median
// point of (node, neighbor, neighbor) triples when it shortens the tree —
// a linear-time-per-pass local refinement suitable for high-fanout nets.
func medianSteinerize(terms []geom.Point) *topology {
	pts := append([]geom.Point(nil), terms...)
	edges, _ := mstEdges(pts)
	tp := &topology{pts: pts, edges: edges}
	// Each successful pass inserts one Steiner point; cap insertions so
	// pathological high-fanout nets stay cheap.
	maxInsert := len(terms) - 2
	if maxInsert > 64 {
		maxInsert = 64
	}
	for i := 0; i < maxInsert; i++ {
		if !tp.medianPass() {
			break
		}
	}
	return tp
}

// medianPass tries one insertion round; reports whether any gain was
// realized.
func (tp *topology) medianPass() bool {
	adj := make([][]int, len(tp.pts))
	for ei, e := range tp.edges {
		adj[e[0]] = append(adj[e[0]], ei)
		adj[e[1]] = append(adj[e[1]], ei)
	}
	improved := false
	for u := 0; u < len(tp.pts); u++ {
		if len(adj[u]) < 2 {
			continue
		}
		// Find the best neighbor pair for u. Cap the pairs examined so a
		// hub node with hundreds of neighbors stays affordable.
		nn := len(adj[u])
		if nn > 16 {
			nn = 16
		}
		bestGain := 0
		var bestA, bestB int
		var bestS geom.Point
		for i := 0; i < nn; i++ {
			for j := i + 1; j < nn; j++ {
				a := other(tp.edges[adj[u][i]], u)
				b := other(tp.edges[adj[u][j]], u)
				s := geom.Median([]geom.Point{tp.pts[u], tp.pts[a], tp.pts[b]})
				if s == tp.pts[u] || s == tp.pts[a] || s == tp.pts[b] {
					continue
				}
				before := geom.ManhattanDist(tp.pts[u], tp.pts[a]) + geom.ManhattanDist(tp.pts[u], tp.pts[b])
				after := geom.ManhattanDist(tp.pts[u], s) + geom.ManhattanDist(s, tp.pts[a]) + geom.ManhattanDist(s, tp.pts[b])
				if gain := before - after; gain > bestGain {
					bestGain, bestA, bestB, bestS = gain, a, b, s
				}
			}
		}
		if bestGain > 0 {
			sIdx := len(tp.pts)
			tp.pts = append(tp.pts, bestS)
			tp.removeEdge(u, bestA)
			tp.removeEdge(u, bestB)
			tp.edges = append(tp.edges, [2]int{u, sIdx}, [2]int{sIdx, bestA}, [2]int{sIdx, bestB})
			improved = true
			// Adjacency is stale; handle remaining nodes next pass.
			return true
		}
	}
	return improved
}

func other(e [2]int, u int) int {
	if e[0] == u {
		return e[1]
	}
	return e[0]
}

func (tp *topology) removeEdge(a, b int) {
	for i, e := range tp.edges {
		if (e[0] == a && e[1] == b) || (e[0] == b && e[1] == a) {
			tp.edges = append(tp.edges[:i], tp.edges[i+1:]...)
			return
		}
	}
}

// Perturb randomly displaces every Steiner node by up to maxDist DBU in
// each axis, clamped to bound — the random-disturbance experiment of the
// paper's Fig. 2.
func Perturb(f *Forest, rng *rand.Rand, maxDist float64, bound geom.BBox) {
	for _, t := range f.Trees {
		for i := range t.Nodes {
			if t.Nodes[i].Kind != SteinerNode {
				continue
			}
			dx := (rng.Float64()*2 - 1) * maxDist
			dy := (rng.Float64()*2 - 1) * maxDist
			p := t.Nodes[i].Pos
			t.Nodes[i].Pos = bound.ClampF(geom.FPoint{X: p.X + dx, Y: p.Y + dy})
		}
	}
}
