package rsmt

import (
	"fmt"
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/synth"
)

// benchAPU builds the placed APU benchmark once per bench.
func benchAPU(b *testing.B) *netlist.Design {
	b.Helper()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		b.Fatal(err)
	}
	d, err := synth.Generate(spec, lib.Default())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkBuildAllRSMT(b *testing.B) {
	d := benchAPU(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildAll(d, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildAllPD(b *testing.B) {
	d := benchAPU(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildAllPD(d, 0.5, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildAllWorkers compares the per-net fan-out across worker
// counts (the output is identical; only wall clock changes).
func BenchmarkBuildAllWorkers(b *testing.B) {
	d := benchAPU(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := BuildAll(d, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
