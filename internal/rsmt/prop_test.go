package rsmt_test

import (
	"fmt"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/check/oracle"
	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// netTerminals collects a net's pin positions.
func netTerminals(d *netlist.Design, net *netlist.Net) []geom.Point {
	terms := make([]geom.Point, 0, net.NumPins())
	terms = append(terms, d.Pin(net.Driver).Pos)
	for _, s := range net.Sinks {
		terms = append(terms, d.Pin(s).Pos)
	}
	return terms
}

// propCfg keeps randomized whole-design properties affordable.
var propCfg = check.Config{Cases: 8}

// TestPropForestValidAndSandwiched builds the Steiner forest of random
// designs and checks structural validity plus the wirelength sandwich
// HPWL ≤ tree ≤ terminal-MST for every net.
func TestPropForestValidAndSandwiched(t *testing.T) {
	check.RunCfg(t, propCfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		d, err := spec.Build()
		if err != nil {
			return err
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			return err
		}
		if err := f.Validate(d); err != nil {
			return fmt.Errorf("forest invalid: %w", err)
		}
		for i := range f.Trees {
			tr := f.Trees[i]
			terms := netTerminals(d, d.Net(tr.Net))
			wl := tr.WirelengthF()
			if hpwl := geom.BBoxOf(terms).HalfPerimeter(); wl < float64(hpwl)-1e-6 {
				return fmt.Errorf("net %d: wirelength %.3f below HPWL %d", i, wl, hpwl)
			}
			if mst := oracle.MSTLength(terms); wl > float64(mst)+1e-6 {
				return fmt.Errorf("net %d: wirelength %.3f above terminal MST %d", i, wl, mst)
			}
		}
		return nil
	})
}

// TestPropWirelengthTranslationInvariant shifts an entire placed design
// and rebuilds: construction is translation-covariant, so every tree's
// wirelength must be bit-identical.
func TestPropWirelengthTranslationInvariant(t *testing.T) {
	shiftBox := geom.BBox{XLo: -500, YLo: -500, XHi: 500, YHi: 500}
	g := check.Two(check.DesignSpecs(), check.PointIn(shiftBox))
	check.RunCfg(t, propCfg, g, func(in check.Pair[check.DesignSpec, geom.Point]) error {
		spec, shift := in.A, in.B
		d, err := spec.Build()
		if err != nil {
			return err
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			return err
		}
		d2, err := spec.Build()
		if err != nil {
			return err
		}
		d2.Die.XLo += shift.X
		d2.Die.XHi += shift.X
		d2.Die.YLo += shift.Y
		d2.Die.YHi += shift.Y
		for i := range d2.Pins {
			d2.Pins[i].Pos.X += shift.X
			d2.Pins[i].Pos.Y += shift.Y
		}
		f2, err := rsmt.BuildAll(d2, rsmt.DefaultOptions())
		if err != nil {
			return err
		}
		if len(f.Trees) != len(f2.Trees) {
			return fmt.Errorf("tree count changed under translation: %d vs %d", len(f.Trees), len(f2.Trees))
		}
		for i := range f.Trees {
			a, b := f.Trees[i].WirelengthF(), f2.Trees[i].WirelengthF()
			if a != b {
				return fmt.Errorf("net %d: wirelength %.9g became %.9g after shift %v", i, a, b, shift)
			}
		}
		return nil
	})
}

// TestPropPerturbStaysValid randomly jiggles Steiner points and checks
// the forest still validates and every Steiner node stays in bounds.
func TestPropPerturbStaysValid(t *testing.T) {
	g := check.Two(check.DesignSpecs(), check.Int(1, 1<<30))
	check.RunCfg(t, propCfg, g, func(in check.Pair[check.DesignSpec, int]) error {
		d, err := in.A.Build()
		if err != nil {
			return err
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			return err
		}
		rng := check.NewRNG(uint64(in.B)).Rand()
		rsmt.Perturb(f, rng, 7.5, d.Die)
		if err := f.Validate(d); err != nil {
			return fmt.Errorf("forest invalid after perturb: %w", err)
		}
		die := d.Die
		for ti := range f.Trees {
			for _, n := range f.Trees[ti].Nodes {
				if n.Pos.X < float64(die.XLo) || n.Pos.X > float64(die.XHi) ||
					n.Pos.Y < float64(die.YLo) || n.Pos.Y > float64(die.YHi) {
					return fmt.Errorf("tree %d node at %v escaped die %+v", ti, n.Pos, die)
				}
			}
		}
		return nil
	})
}
