package rsmt

import (
	"testing"

	"tsteiner/internal/geom"
)

func TestPDAlphaZeroMatchesMSTCost(t *testing.T) {
	terms := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 2}, {X: 4, Y: 9}, {X: 12, Y: 12}, {X: 2, Y: 6}}
	edges := pdTopology(terms, 0)
	if len(edges) != len(terms)-1 {
		t.Fatalf("edge count %d", len(edges))
	}
	cost := 0
	for _, e := range edges {
		cost += geom.ManhattanDist(terms[e[0]], terms[e[1]])
	}
	_, mstCost := mstEdges(terms)
	if cost != mstCost {
		t.Fatalf("PD(α=0) cost %d != MST cost %d", cost, mstCost)
	}
}

func TestPDAlphaOneIsShortestPathsStar(t *testing.T) {
	// With α=1 the attach cost is the full source path, so every node
	// whose direct source distance is shortest attaches directly; path
	// lengths equal the source Manhattan distance when the geometry is
	// "star-friendly".
	terms := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: -8, Y: 1}}
	edges := pdTopology(terms, 1)
	// Reconstruct path lengths from source.
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	pathLen := map[int]int{0: 0}
	stack := []int{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if _, ok := pathLen[v]; !ok {
				pathLen[v] = pathLen[u] + geom.ManhattanDist(terms[u], terms[v])
				stack = append(stack, v)
			}
		}
	}
	for v := 1; v < len(terms); v++ {
		direct := geom.ManhattanDist(terms[0], terms[v])
		if pathLen[v] != direct {
			t.Fatalf("α=1 path to %d is %d, direct %d", v, pathLen[v], direct)
		}
	}
}

func TestPDPathLengthMonotoneInAlpha(t *testing.T) {
	// Higher α must not lengthen total source→sink path lengths; total
	// wirelength must not shrink. (Statistical property; use a spread of
	// geometries.)
	geoms := [][]geom.Point{
		{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}, {X: 35, Y: 10}},
		{{X: 0, Y: 0}, {X: 5, Y: 30}, {X: 10, Y: 60}, {X: 15, Y: 90}, {X: 40, Y: 45}},
		{{X: 50, Y: 50}, {X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}},
	}
	for gi, terms := range geoms {
		sumPath := func(alpha float64) (wl int, paths int) {
			edges := pdTopology(terms, alpha)
			adj := map[int][]int{}
			for _, e := range edges {
				wl += geom.ManhattanDist(terms[e[0]], terms[e[1]])
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
			}
			pl := map[int]int{0: 0}
			stack := []int{0}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range adj[u] {
					if _, ok := pl[v]; !ok {
						pl[v] = pl[u] + geom.ManhattanDist(terms[u], terms[v])
						stack = append(stack, v)
					}
				}
			}
			for v := 1; v < len(terms); v++ {
				paths += pl[v]
			}
			return wl, paths
		}
		wl0, p0 := sumPath(0)
		wl1, p1 := sumPath(1)
		if p1 > p0 {
			t.Errorf("geometry %d: α=1 total path %d exceeds α=0 %d", gi, p1, p0)
		}
		if wl1 < wl0 {
			t.Errorf("geometry %d: α=1 wirelength %d below α=0 %d", gi, wl1, wl0)
		}
	}
}

func TestBuildAllPDValidates(t *testing.T) {
	d := placedDesign(t, "cic_decimator", 1.0)
	for _, alpha := range []float64{0, 0.3, 0.7, 1} {
		f, err := BuildAllPD(d, alpha, DefaultOptions())
		if err != nil {
			t.Fatalf("alpha %g: %v", alpha, err)
		}
		if err := f.Validate(d); err != nil {
			t.Fatalf("alpha %g: %v", alpha, err)
		}
	}
	// Out-of-range alphas clamp instead of failing.
	if _, err := BuildAllPD(d, -1, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAllPD(d, 2, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestPathLengthsAndRadius(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.Trees {
		pl := tr.PathLengths()
		if pl[0] != 0 {
			t.Fatal("driver path length must be zero")
		}
		r := tr.Radius()
		wl := tr.WirelengthF()
		for i, v := range pl {
			if v < 0 {
				t.Fatal("negative path length")
			}
			if v > wl+1e-9 {
				t.Fatalf("node %d path %g exceeds total WL %g", i, v, wl)
			}
		}
		if r > wl+1e-9 {
			t.Fatalf("radius %g exceeds WL %g", r, wl)
		}
		// Radius must reach at least the farthest direct pin distance /
		// always at least 0; and equal max pin path length by definition.
		maxPin := 0.0
		for i := range tr.Nodes {
			if tr.Nodes[i].Kind == PinNode && pl[i] > maxPin {
				maxPin = pl[i]
			}
		}
		if r != maxPin {
			t.Fatalf("Radius %g != max pin path %g", r, maxPin)
		}
	}
}

func TestPDReducesTotalRadius(t *testing.T) {
	// Aggregate over a design: α=1 (shortest-path) trees must have total
	// radius no larger than α=0 (MST) trees.
	d := placedDesign(t, "APU", 0.3)
	sumRadius := func(f *Forest) float64 {
		s := 0.0
		for _, tr := range f.Trees {
			s += tr.Radius()
		}
		return s
	}
	f0, err := BuildAllPD(d, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f1, err := BuildAllPD(d, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sumRadius(f1) > sumRadius(f0)*1.001 {
		t.Fatalf("α=1 total radius %g exceeds α=0 %g", sumRadius(f1), sumRadius(f0))
	}
}

func TestPDTradeoffOnDesign(t *testing.T) {
	// Across a real design: α=0.7 trees should have total WL ≥ α=0 trees.
	d := placedDesign(t, "APU", 0.3)
	f0, err := BuildAllPD(d, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f7, err := BuildAllPD(d, 0.7, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f7.TotalWirelengthF() < f0.TotalWirelengthF()*0.999 {
		t.Fatalf("α=0.7 WL %.0f below α=0 WL %.0f",
			f7.TotalWirelengthF(), f0.TotalWirelengthF())
	}
}
