// Package rsmt constructs and manipulates rectilinear Steiner trees, the
// structures TSteiner optimizes. It plays the role of FLUTE + edge
// shifting in the paper's flow: every multi-pin net is decomposed into a
// tree of two-pin segments through additional Steiner points.
//
// Construction strategy (see DESIGN.md):
//   - ≤2 distinct terminals: direct edge.
//   - small nets: iterated 1-Steiner over the Hanan grid (near-optimal).
//   - large nets: Manhattan MST followed by local median Steinerization.
//
// Degree-2 Steiner nodes are spliced away (never increases wirelength) and
// leaf Steiner nodes dropped, so surviving Steiner nodes all have degree
// ≥3 — the movable points of the optimization, matching the paper's
// Steiner-node statistics.
package rsmt

import (
	"fmt"

	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
)

// Kind distinguishes the two node types of the (node-heterogeneous)
// Steiner graph.
type Kind uint8

// Node kinds.
const (
	PinNode Kind = iota
	SteinerNode
)

// Node is one vertex of a Steiner tree.
type Node struct {
	Kind Kind
	// Pin is set for PinNode.
	Pin netlist.PinID
	// Pos is the node position. Pin nodes are fixed; Steiner nodes are
	// moved continuously during refinement and rounded at post-processing.
	Pos geom.FPoint
}

// Edge connects two node indices within one tree.
type Edge struct {
	A, B int32
}

// Tree is the Steiner tree of one net. Node 0 is always the net's driver
// pin.
type Tree struct {
	Net   netlist.NetID
	Nodes []Node
	Edges []Edge
}

// SteinerCount returns the number of Steiner nodes.
func (t *Tree) SteinerCount() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Kind == SteinerNode {
			n++
		}
	}
	return n
}

// WirelengthF returns the total Manhattan length of the tree's edges using
// the continuous node positions.
func (t *Tree) WirelengthF() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += geom.ManhattanDistF(t.Nodes[e.A].Pos, t.Nodes[e.B].Pos)
	}
	return sum
}

// Adjacency returns the neighbor lists of the tree.
func (t *Tree) Adjacency() [][]int32 {
	adj := make([][]int32, len(t.Nodes))
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	return adj
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{Net: t.Net}
	c.Nodes = append([]Node(nil), t.Nodes...)
	c.Edges = append([]Edge(nil), t.Edges...)
	return c
}

// Validate checks tree invariants against the design:
//   - node 0 is the net's driver pin,
//   - the pin nodes are exactly the net's pins,
//   - |E| = |V|−1 and the tree is connected (hence acyclic).
func (t *Tree) Validate(d *netlist.Design) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("rsmt: empty tree for net %d", t.Net)
	}
	net := d.Net(t.Net)
	if t.Nodes[0].Kind != PinNode || t.Nodes[0].Pin != net.Driver {
		return fmt.Errorf("rsmt: net %s: node 0 is not the driver", net.Name)
	}
	want := map[netlist.PinID]bool{net.Driver: true}
	for _, s := range net.Sinks {
		want[s] = true
	}
	seen := map[netlist.PinID]bool{}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Kind == PinNode {
			if !want[n.Pin] {
				return fmt.Errorf("rsmt: net %s: foreign pin %d in tree", net.Name, n.Pin)
			}
			if seen[n.Pin] {
				return fmt.Errorf("rsmt: net %s: duplicate pin node %d", net.Name, n.Pin)
			}
			seen[n.Pin] = true
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("rsmt: net %s: tree covers %d of %d pins", net.Name, len(seen), len(want))
	}
	if len(t.Edges) != len(t.Nodes)-1 {
		return fmt.Errorf("rsmt: net %s: %d edges for %d nodes", net.Name, len(t.Edges), len(t.Nodes))
	}
	// Connectivity via BFS from node 0.
	adj := t.Adjacency()
	visited := make([]bool, len(t.Nodes))
	queue := []int32{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("rsmt: net %s: tree disconnected (%d of %d reachable)", net.Name, count, len(t.Nodes))
	}
	return nil
}

// PathLengths returns, for every node, the Manhattan length of the tree
// path from the driver (node 0) — the quantity timing-driven constructions
// like Prim–Dijkstra trade against total wirelength.
func (t *Tree) PathLengths() []float64 {
	adj := t.Adjacency()
	out := make([]float64, len(t.Nodes))
	visited := make([]bool, len(t.Nodes))
	stack := []int32{0}
	visited[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				out[v] = out[u] + geom.ManhattanDistF(t.Nodes[u].Pos, t.Nodes[v].Pos)
				stack = append(stack, v)
			}
		}
	}
	return out
}

// Radius returns the largest driver→pin path length in the tree.
func (t *Tree) Radius() float64 {
	pl := t.PathLengths()
	r := 0.0
	for i := range t.Nodes {
		if t.Nodes[i].Kind == PinNode && pl[i] > r {
			r = pl[i]
		}
	}
	return r
}

// SteinerPositionsOfTree extracts this tree's Steiner coordinates and the
// node indices they came from (a single-tree analogue of the forest-level
// SteinerPositions).
func (t *Tree) SteinerPositionsOfTree() (xs, ys []float64, nodes []int32) {
	for i := range t.Nodes {
		if t.Nodes[i].Kind == SteinerNode {
			xs = append(xs, t.Nodes[i].Pos.X)
			ys = append(ys, t.Nodes[i].Pos.Y)
			nodes = append(nodes, int32(i))
		}
	}
	return xs, ys, nodes
}

// SetPositionsOfTree writes Steiner coordinates back into this tree
// without bounds clamping (callers clamp when a die is in scope).
func (t *Tree) SetPositionsOfTree(xs, ys []float64, nodes []int32) {
	for i, n := range nodes {
		t.Nodes[n].Pos = geom.FPoint{X: xs[i], Y: ys[i]}
	}
}

// Forest is the Steiner tree set S_T of a design: one tree per net, in net
// order.
type Forest struct {
	Trees []*Tree
}

// Stats are the Steiner-side Table I statistics.
type Stats struct {
	SteinerNodes int // Steiner nodes over all trees
	TreeEdges    int // edges over all trees ("# Edges Net" in Table I)
}

// Stats aggregates node/edge counts over the forest.
func (f *Forest) Stats() Stats {
	var s Stats
	for _, t := range f.Trees {
		s.SteinerNodes += t.SteinerCount()
		s.TreeEdges += len(t.Edges)
	}
	return s
}

// TotalWirelengthF sums the continuous wirelength of all trees.
func (f *Forest) TotalWirelengthF() float64 {
	var sum float64
	for _, t := range f.Trees {
		sum += t.WirelengthF()
	}
	return sum
}

// Clone deep-copies the forest.
func (f *Forest) Clone() *Forest {
	c := &Forest{Trees: make([]*Tree, len(f.Trees))}
	for i, t := range f.Trees {
		c.Trees[i] = t.Clone()
	}
	return c
}

// Validate checks every tree.
func (f *Forest) Validate(d *netlist.Design) error {
	if len(f.Trees) != len(d.Nets) {
		return fmt.Errorf("rsmt: forest has %d trees for %d nets", len(f.Trees), len(d.Nets))
	}
	for _, t := range f.Trees {
		if err := t.Validate(d); err != nil {
			return err
		}
	}
	return nil
}

// SteinerPositions extracts the continuous coordinates of every Steiner
// node in forest order — the optimization variables (X_s, Y_s) of the
// paper. The returned index slice records (tree, node) for each variable.
func (f *Forest) SteinerPositions() (xs, ys []float64, index []SteinerRef) {
	for ti, t := range f.Trees {
		for ni := range t.Nodes {
			if t.Nodes[ni].Kind == SteinerNode {
				xs = append(xs, t.Nodes[ni].Pos.X)
				ys = append(ys, t.Nodes[ni].Pos.Y)
				index = append(index, SteinerRef{Tree: int32(ti), Node: int32(ni)})
			}
		}
	}
	return xs, ys, index
}

// SteinerRef addresses one Steiner node within a forest.
type SteinerRef struct {
	Tree, Node int32
}

// CopySteinerPositionsInto writes the Steiner coordinates into
// caller-owned buffers in forest order (the same order SteinerPositions
// uses) and returns the count written. The allocation-free companion to
// SteinerPositions for hot loops; xs and ys must each hold at least the
// forest's Steiner-node count.
func (f *Forest) CopySteinerPositionsInto(xs, ys []float64) int {
	n := 0
	for _, t := range f.Trees {
		for ni := range t.Nodes {
			if t.Nodes[ni].Kind == SteinerNode {
				xs[n] = t.Nodes[ni].Pos.X
				ys[n] = t.Nodes[ni].Pos.Y
				n++
			}
		}
	}
	return n
}

// CopyPositionsFrom copies every node position from src into f without
// allocating. Both forests must share the same topology (tree count,
// node counts); only positions differ between candidate forests in the
// refinement loop, so this replaces Clone there.
func (f *Forest) CopyPositionsFrom(src *Forest) error {
	if len(f.Trees) != len(src.Trees) {
		return fmt.Errorf("rsmt: copy positions across %d vs %d trees", len(f.Trees), len(src.Trees))
	}
	for ti, t := range f.Trees {
		s := src.Trees[ti]
		if len(t.Nodes) != len(s.Nodes) {
			return fmt.Errorf("rsmt: tree %d has %d vs %d nodes", ti, len(t.Nodes), len(s.Nodes))
		}
		for ni := range t.Nodes {
			t.Nodes[ni].Pos = s.Nodes[ni].Pos
		}
	}
	return nil
}

// SetSteinerPositions writes coordinates back into the forest, clamping to
// the given bounding box (movement is constrained to the grid-graph
// boundary per the paper). The index must come from SteinerPositions on a
// forest with identical topology.
func (f *Forest) SetSteinerPositions(xs, ys []float64, index []SteinerRef, bound geom.BBox) error {
	if len(xs) != len(index) || len(ys) != len(index) {
		return fmt.Errorf("rsmt: position/index length mismatch")
	}
	for i, ref := range index {
		t := f.Trees[ref.Tree]
		if t.Nodes[ref.Node].Kind != SteinerNode {
			return fmt.Errorf("rsmt: ref %d does not address a Steiner node", i)
		}
		t.Nodes[ref.Node].Pos = bound.ClampF(geom.FPoint{X: xs[i], Y: ys[i]})
	}
	return nil
}

// RoundPositions snaps every Steiner node to integer DBU coordinates, the
// paper's post-processing step.
func (f *Forest) RoundPositions() {
	for _, t := range f.Trees {
		for i := range t.Nodes {
			if t.Nodes[i].Kind == SteinerNode {
				t.Nodes[i].Pos = t.Nodes[i].Pos.Round().ToF()
			}
		}
	}
}
