package rsmt

import (
	"reflect"
	"testing"
)

// forestsEqual compares two forests structurally (trees, nodes, edges,
// positions) — byte-level equality of the construction output.
func forestsEqual(a, b *Forest) bool {
	return reflect.DeepEqual(a.Trees, b.Trees)
}

func TestBuildAllWorkerCountInvariant(t *testing.T) {
	d := placedDesign(t, "APU", 0.3)
	opts := DefaultOptions()
	opts.Workers = 1
	serial, err := BuildAll(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		opts.Workers = w
		par, err := BuildAll(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !forestsEqual(serial, par) {
			t.Fatalf("BuildAll output differs at %d workers", w)
		}
	}
}

func TestBuildAllPDWorkerCountInvariant(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	opts := DefaultOptions()
	opts.Workers = 1
	serial, err := BuildAllPD(d, 0.4, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := BuildAllPD(d, 0.4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !forestsEqual(serial, par) {
		t.Fatal("BuildAllPD output differs at 4 workers")
	}
}
