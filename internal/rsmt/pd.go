package rsmt

import (
	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
	"tsteiner/internal/par"
)

// Prim–Dijkstra construction (Alpert et al., "Prim-Dijkstra revisited" —
// the paper's reference [4]): the classic *pre-learning* timing-driven
// Steiner approach that TSteiner is positioned against. The tree grows
// from the driver; attaching node v to tree node u costs
//
//	cost(u, v) = α·pathLen(u) + dist(u, v)
//
// α = 0 reduces to Prim (minimum wirelength), α = 1 to Dijkstra (shortest
// source–sink paths, longer total wire). Intermediate α trades wirelength
// for source-to-sink path length — the "path-length early metric" the
// paper's introduction argues is insufficient for sign-off timing.

// BuildAllPD constructs one PD tree per net with trade-off alpha ∈ [0,1],
// then applies the same local median Steinerization and pruning as the
// default constructor.
func BuildAllPD(d *netlist.Design, alpha float64, opt Options) (*Forest, error) {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	trees, err := par.Map(opt.Workers, d.Nets, func(ni int, _ netlist.Net) (*Tree, error) {
		return buildNetPD(d, netlist.NetID(ni), alpha), nil
	})
	if err != nil {
		return nil, err
	}
	f := &Forest{Trees: trees}
	if err := f.Validate(d); err != nil {
		return nil, err
	}
	return f, nil
}

func buildNetPD(d *netlist.Design, ni netlist.NetID, alpha float64) *Tree {
	net := d.Net(ni)
	pins := make([]netlist.PinID, 0, net.NumPins())
	pins = append(pins, net.Driver)
	pins = append(pins, net.Sinks...)

	// Unique geometric terminals, driver first (same convention as the
	// default constructor).
	posIndex := map[geom.Point]int{}
	var terms []geom.Point
	var repPin []netlist.PinID
	extra := map[int][]netlist.PinID{}
	for _, pid := range pins {
		p := d.Pin(pid).Pos
		if gi, ok := posIndex[p]; ok {
			extra[gi] = append(extra[gi], pid)
			continue
		}
		posIndex[p] = len(terms)
		terms = append(terms, p)
		repPin = append(repPin, pid)
	}

	edges := pdTopology(terms, alpha)
	tp := &topology{pts: terms, edges: edges}
	if len(terms) > 2 {
		// Same local Steinerization as the large-net default path.
		maxInsert := len(terms) - 2
		if maxInsert > 64 {
			maxInsert = 64
		}
		for i := 0; i < maxInsert; i++ {
			if !tp.medianPass() {
				break
			}
		}
	}
	tp.prune(len(terms))

	t := &Tree{Net: ni}
	geoToNode := make([]int32, len(tp.pts))
	for gi := 0; gi < len(terms); gi++ {
		geoToNode[gi] = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{Kind: PinNode, Pin: repPin[gi], Pos: tp.pts[gi].ToF()})
	}
	for gi := len(terms); gi < len(tp.pts); gi++ {
		geoToNode[gi] = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{Kind: SteinerNode, Pos: tp.pts[gi].ToF()})
	}
	for _, e := range tp.edges {
		t.Edges = append(t.Edges, Edge{A: geoToNode[e[0]], B: geoToNode[e[1]]})
	}
	for gi := 0; gi < len(terms); gi++ {
		for _, pid := range extra[gi] {
			id := int32(len(t.Nodes))
			t.Nodes = append(t.Nodes, Node{Kind: PinNode, Pin: pid, Pos: terms[gi].ToF()})
			t.Edges = append(t.Edges, Edge{A: geoToNode[gi], B: id})
		}
	}
	return t
}

// pdTopology runs the PD greedy growth over the terminals (index 0 is the
// source) and returns the spanning edge list.
func pdTopology(terms []geom.Point, alpha float64) [][2]int {
	n := len(terms)
	if n <= 1 {
		return nil
	}
	const inf = int(^uint(0) >> 1)
	inTree := make([]bool, n)
	pathLen := make([]int, n) // source→node path length once attached
	bestCost := make([]float64, n)
	bestPar := make([]int, n)
	for v := 1; v < n; v++ {
		bestCost[v] = float64(inf)
		bestPar[v] = 0
	}
	inTree[0] = true
	update := func(u int) {
		for v := 1; v < n; v++ {
			if inTree[v] {
				continue
			}
			c := alpha*float64(pathLen[u]) + float64(geom.ManhattanDist(terms[u], terms[v]))
			if c < bestCost[v] {
				bestCost[v] = c
				bestPar[v] = u
			}
		}
	}
	update(0)
	edges := make([][2]int, 0, n-1)
	for k := 1; k < n; k++ {
		best := -1
		for v := 1; v < n; v++ {
			if !inTree[v] && (best < 0 || bestCost[v] < bestCost[best]) {
				best = v
			}
		}
		u := bestPar[best]
		inTree[best] = true
		pathLen[best] = pathLen[u] + geom.ManhattanDist(terms[u], terms[best])
		edges = append(edges, [2]int{u, best})
		update(best)
	}
	return edges
}
