package rsmt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/synth"
)

func placedDesign(t *testing.T, name string, scale float64) *netlist.Design {
	t.Helper()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildAllValidates(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	if len(f.Trees) != len(d.Nets) {
		t.Fatalf("tree count %d != net count %d", len(f.Trees), len(d.Nets))
	}
	if err := f.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerNodesHaveDegreeAtLeast3(t *testing.T) {
	d := placedDesign(t, "APU", 0.3)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.Trees {
		adj := tr.Adjacency()
		for i := range tr.Nodes {
			if tr.Nodes[i].Kind == SteinerNode && len(adj[i]) < 3 {
				t.Fatalf("net %d: Steiner node %d has degree %d", tr.Net, i, len(adj[i]))
			}
		}
	}
}

func TestTreeWirelengthVsHPWL(t *testing.T) {
	// HPWL is a lower bound for any connecting tree; the Steiner tree
	// must also be no longer than a star from the driver.
	d := placedDesign(t, "cic_decimator", 1.0)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.Trees {
		net := d.Net(tr.Net)
		pts := []geom.Point{d.Pin(net.Driver).Pos}
		star := 0.0
		for _, s := range net.Sinks {
			pts = append(pts, d.Pin(s).Pos)
			star += float64(geom.ManhattanDist(d.Pin(net.Driver).Pos, d.Pin(s).Pos))
		}
		hpwl := float64(geom.BBoxOf(pts).HalfPerimeter())
		wl := tr.WirelengthF()
		if wl < hpwl-1e-9 {
			t.Fatalf("net %s: tree WL %.1f below HPWL %.1f", net.Name, wl, hpwl)
		}
		if wl > star+1e-9 {
			t.Fatalf("net %s: tree WL %.1f exceeds star WL %.1f", net.Name, wl, star)
		}
	}
}

func TestIterated1SteinerCross(t *testing.T) {
	// Four terminals in a cross: the optimal RSMT uses the center point
	// and total length 4r; the plain MST costs 6r.
	terms := []geom.Point{{X: 0, Y: 10}, {X: 20, Y: 10}, {X: 10, Y: 0}, {X: 10, Y: 20}}
	tp := iterated1Steiner(terms)
	tp.prune(len(terms))
	if got := tp.wirelength(); got != 40 {
		t.Fatalf("cross RSMT wirelength=%d want 40", got)
	}
	if len(tp.pts) != 5 {
		t.Fatalf("expected exactly one Steiner point, got %d extra", len(tp.pts)-4)
	}
}

func TestIterated1SteinerNeverWorseThanMST(t *testing.T) {
	f := func(raw []struct{ X, Y uint8 }) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		seen := map[geom.Point]bool{}
		var terms []geom.Point
		for _, r := range raw {
			p := geom.Point{X: int(r.X), Y: int(r.Y)}
			if !seen[p] {
				seen[p] = true
				terms = append(terms, p)
			}
		}
		if len(terms) < 3 {
			return true
		}
		_, mstCost := mstEdges(terms)
		tp := iterated1Steiner(terms)
		tp.prune(len(terms))
		return tp.wirelength() <= mstCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMedianSteinerizeNeverWorseThanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 15 + rng.Intn(40)
		seen := map[geom.Point]bool{}
		var terms []geom.Point
		for len(terms) < n {
			p := geom.Point{X: rng.Intn(200), Y: rng.Intn(200)}
			if !seen[p] {
				seen[p] = true
				terms = append(terms, p)
			}
		}
		_, mstCost := mstEdges(terms)
		tp := medianSteinerize(terms)
		tp.prune(len(terms))
		if tp.wirelength() > mstCost {
			t.Fatalf("trial %d: steinerized WL %d > MST %d", trial, tp.wirelength(), mstCost)
		}
	}
}

func TestMSTProperties(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}, {X: 5, Y: 5}}
	edges, cost := mstEdges(pts)
	if len(edges) != len(pts)-1 {
		t.Fatalf("MST edge count %d", len(edges))
	}
	if cost <= 0 {
		t.Fatal("MST cost must be positive")
	}
	// Spanning: union-find check.
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		parent[find(e[0])] = find(e[1])
	}
	root := find(0)
	for i := range pts {
		if find(i) != root {
			t.Fatal("MST does not span")
		}
	}
}

func TestColocatedPinsGetZeroLengthEdges(t *testing.T) {
	// Two input pins of the same cell are at the same point; the tree
	// must still contain one node per pin.
	l := lib.Default()
	b := netlist.NewBuilder("x", l)
	pi := b.AddPI("i")
	g := b.AddCell("u1", "NAND2_X1")
	po := b.AddPO("o", 0.01)
	d := b.Design()
	b.Connect(pi, d.Cell(g).InputPins()[0], d.Cell(g).InputPins()[1])
	b.Connect(d.Cell(g).OutputPin(), po)
	dd, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(dd, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := BuildAll(dd, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := f.Trees[0]
	if got := len(tr.Nodes); got != 3 { // driver + 2 sinks, no Steiner
		t.Fatalf("tree nodes=%d want 3", got)
	}
	if err := tr.Validate(dd); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerPositionsRoundTrip(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, idx := f.SteinerPositions()
	if len(xs) != len(ys) || len(xs) != len(idx) {
		t.Fatal("length mismatch")
	}
	if len(xs) != f.Stats().SteinerNodes {
		t.Fatalf("extracted %d positions for %d Steiner nodes", len(xs), f.Stats().SteinerNodes)
	}
	// Shift all by +1.5 then write back and re-read.
	for i := range xs {
		xs[i] += 1.5
		ys[i] -= 2.5
	}
	if err := f.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	xs2, ys2, _ := f.SteinerPositions()
	for i := range xs2 {
		want := d.Die.ClampF(geom.FPoint{X: xs[i], Y: ys[i]})
		if xs2[i] != want.X || ys2[i] != want.Y {
			t.Fatalf("position %d round-trip mismatch", i)
		}
	}
}

func TestSetSteinerPositionsErrors(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, _ := BuildAll(d, DefaultOptions())
	xs, ys, idx := f.SteinerPositions()
	if len(idx) == 0 {
		t.Skip("no Steiner nodes in this design")
	}
	if err := f.SetSteinerPositions(xs[:len(xs)-1], ys, idx, d.Die); err == nil {
		t.Fatal("length mismatch accepted")
	}
	badIdx := append([]SteinerRef(nil), idx...)
	badIdx[0].Node = 0 // node 0 is the driver pin
	if err := f.SetSteinerPositions(xs, ys, badIdx, d.Die); err == nil {
		t.Fatal("non-Steiner ref accepted")
	}
}

func TestRoundPositions(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, _ := BuildAll(d, DefaultOptions())
	xs, ys, idx := f.SteinerPositions()
	for i := range xs {
		xs[i] += 0.3
		ys[i] += 0.7
	}
	if err := f.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	f.RoundPositions()
	xs2, ys2, _ := f.SteinerPositions()
	for i := range xs2 {
		if xs2[i] != float64(int(xs2[i])) || ys2[i] != float64(int(ys2[i])) {
			t.Fatalf("position %d not integral after rounding", i)
		}
	}
}

func TestPerturbStaysInBounds(t *testing.T) {
	d := placedDesign(t, "cic_decimator", 1.0)
	f, _ := BuildAll(d, DefaultOptions())
	before := f.Clone()
	rng := rand.New(rand.NewSource(3))
	Perturb(f, rng, 50, d.Die)
	moved := false
	for ti, tr := range f.Trees {
		for ni := range tr.Nodes {
			n := &tr.Nodes[ni]
			if n.Kind == PinNode {
				if n.Pos != before.Trees[ti].Nodes[ni].Pos {
					t.Fatal("pin node moved by Perturb")
				}
				continue
			}
			if n.Pos != before.Trees[ti].Nodes[ni].Pos {
				moved = true
			}
			p := n.Pos
			if p.X < float64(d.Die.XLo) || p.X > float64(d.Die.XHi) ||
				p.Y < float64(d.Die.YLo) || p.Y > float64(d.Die.YHi) {
				t.Fatalf("Steiner node escaped die: %v", p)
			}
		}
	}
	if !moved && f.Stats().SteinerNodes > 0 {
		t.Fatal("Perturb moved nothing")
	}
}

func TestForestCloneIndependent(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, _ := BuildAll(d, DefaultOptions())
	c := f.Clone()
	xs, ys, idx := f.SteinerPositions()
	if len(idx) == 0 {
		t.Skip("no Steiner nodes")
	}
	for i := range xs {
		xs[i] += 10
	}
	if err := f.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	cx, _, _ := c.SteinerPositions()
	if cx[0] == xs[0] {
		t.Fatal("clone aliases original positions")
	}
}

func TestStatsCountsMatch(t *testing.T) {
	d := placedDesign(t, "usb_cdc_core", 0.3)
	f, _ := BuildAll(d, DefaultOptions())
	st := f.Stats()
	manualSteiner, manualEdges := 0, 0
	for _, tr := range f.Trees {
		manualSteiner += tr.SteinerCount()
		manualEdges += len(tr.Edges)
	}
	if st.SteinerNodes != manualSteiner || st.TreeEdges != manualEdges {
		t.Fatalf("Stats=%+v manual=(%d,%d)", st, manualSteiner, manualEdges)
	}
	if st.SteinerNodes == 0 {
		t.Fatal("expected some Steiner nodes in a multi-pin design")
	}
}

func TestBuildDeterministic(t *testing.T) {
	d1 := placedDesign(t, "spm", 1.0)
	d2 := placedDesign(t, "spm", 1.0)
	f1, _ := BuildAll(d1, DefaultOptions())
	f2, _ := BuildAll(d2, DefaultOptions())
	if len(f1.Trees) != len(f2.Trees) {
		t.Fatal("tree counts differ")
	}
	for i := range f1.Trees {
		a, b := f1.Trees[i], f2.Trees[i]
		if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
			t.Fatalf("tree %d differs structurally", i)
		}
		for j := range a.Nodes {
			if a.Nodes[j].Pos != b.Nodes[j].Pos {
				t.Fatalf("tree %d node %d position differs", i, j)
			}
		}
	}
}

// TestCopyHelpersMatchAllocatingForms pins the allocation-free forest
// helpers the refinement loop uses against their allocating
// counterparts, including the topology-mismatch error paths.
func TestCopyHelpersMatchAllocatingForms(t *testing.T) {
	d := placedDesign(t, "spm", 0.3)
	f, err := BuildAll(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, idx := f.SteinerPositions()
	bxs := make([]float64, len(xs))
	bys := make([]float64, len(ys))
	if n := f.CopySteinerPositionsInto(bxs, bys); n != len(idx) {
		t.Fatalf("CopySteinerPositionsInto wrote %d coords, want %d", n, len(idx))
	}
	for i := range xs {
		if bxs[i] != xs[i] || bys[i] != ys[i] {
			t.Fatalf("coord %d: (%v,%v) != (%v,%v)", i, bxs[i], bys[i], xs[i], ys[i])
		}
	}

	moved := f.Clone()
	for i := range xs {
		xs[i] += 1
		ys[i] += 2
	}
	if err := moved.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	if err := f.CopyPositionsFrom(moved); err != nil {
		t.Fatal(err)
	}
	gx, gy, _ := f.SteinerPositions()
	mx, my, _ := moved.SteinerPositions()
	for i := range gx {
		if gx[i] != mx[i] || gy[i] != my[i] {
			t.Fatalf("coord %d not copied: (%v,%v) != (%v,%v)", i, gx[i], gy[i], mx[i], my[i])
		}
	}

	if err := f.CopyPositionsFrom(&Forest{}); err == nil {
		t.Error("tree-count mismatch not rejected")
	}
	bad := f.Clone()
	bad.Trees[0].Nodes = bad.Trees[0].Nodes[:len(bad.Trees[0].Nodes)-1]
	if err := f.CopyPositionsFrom(bad); err == nil {
		t.Error("node-count mismatch not rejected")
	}
}
