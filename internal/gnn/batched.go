package gnn

import (
	"fmt"

	"tsteiner/internal/tensor"
)

// This file is the batched entry point of the evaluator: one fused
// forward pass over K candidate coordinate sets sharing a single Batch's
// precomputed graph structure. The Steiner coordinates become K-lane
// leaves and every op strides over the [K × rows × cols] lane buffer with
// one tape record, while the batch's constant tables (per-level sink/arc
// indices, d0/slope delay columns, pin coordinates, required times — all
// precomputed once by finalizeDerived) join the tape as unbatched aliases
// that broadcast across lanes. That is the amortization: K candidates pay
// for the structure tables, the tape recording and the op dispatch once.
//
// Lane k of every output is bit-identical to a sequential Forward on
// candidate k alone (the tensor package's lane contract), so batched and
// sequential refinement trajectories are byte-equal.

// BatchPrediction is the output of ForwardBatch: the coordinate leaves
// and predictions of K candidates, stored as K-lane tensors.
type BatchPrediction struct {
	// K is the candidate (lane) count.
	K int
	// Xs, Ys are the K-lane coordinate leaves; after Backward, lane k of
	// their Grad holds candidate k's position gradient.
	Xs, Ys *tensor.Tensor
	// Arrival is the predicted arrival time per pin, per lane.
	Arrival *tensor.Tensor
	// EndpointArrival gathers Arrival at the batch's endpoints, per lane.
	EndpointArrival *tensor.Tensor
	// Slack = required − arrival per endpoint, per lane.
	Slack *tensor.Tensor
}

// LaneSlack returns candidate k's slack values (a no-copy view).
func (bp *BatchPrediction) LaneSlack(k int) []float64 { return bp.Slack.LaneData(k) }

// LaneArrival returns candidate k's per-pin arrivals (a no-copy view).
func (bp *BatchPrediction) LaneArrival(k int) []float64 { return bp.Arrival.LaneData(k) }

// Lane returns candidate k's prediction as detached unbatched tensors
// (no tape, no grad flow) — for callers that want the sequential
// Prediction shape.
func (bp *BatchPrediction) Lane(k int) Prediction {
	view := func(t *tensor.Tensor) *tensor.Tensor {
		return &tensor.Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.LaneData(k)}
	}
	return Prediction{
		Arrival:         view(bp.Arrival),
		EndpointArrival: view(bp.EndpointArrival),
		Slack:           view(bp.Slack),
	}
}

// LeavesFromCoordsBatch builds K-lane (X_s, Y_s) leaf tensors from
// lane-major flat coordinate buffers (lanes × NSteiner values each,
// candidate k's coordinates in block k), copying into tape-owned
// (workspace-pooled, when available) storage.
func (b *Batch) LeavesFromCoordsBatch(tp *tensor.Tape, lanes int, xs, ys []float64) (*tensor.Tensor, *tensor.Tensor, error) {
	xt, err := tp.CopyInLanes(lanes, b.NSteiner, 1, xs)
	if err != nil {
		return nil, nil, err
	}
	yt, err := tp.CopyInLanes(lanes, b.NSteiner, 1, ys)
	if err != nil {
		return nil, nil, err
	}
	return tp.Leaf(xt), tp.Leaf(yt), nil
}

// ForwardBatch evaluates `lanes` candidate coordinate sets against the
// batch's shared graph structure in one fused forward pass. coordsX and
// coordsY are lane-major flat buffers (lanes × NSteiner values each).
// Lane k of the returned prediction — values and, after Backward on a
// lane-sliced loss, gradients — is bit-identical to Forward on candidate
// k alone. With lanes == 1 this IS Forward modulo the lane wrapper, so
// there is no separate code path to keep in sync.
func (m *Model) ForwardBatch(tp *tensor.Tape, b *Batch, lanes int, coordsX, coordsY []float64, trainParams bool) (*BatchPrediction, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("gnn: ForwardBatch needs lanes >= 1, got %d", lanes)
	}
	xs, ys, err := b.LeavesFromCoordsBatch(tp, lanes, coordsX, coordsY)
	if err != nil {
		return nil, err
	}
	p, err := m.Forward(tp, b, xs, ys, trainParams)
	if err != nil {
		return nil, err
	}
	return &BatchPrediction{
		K: lanes, Xs: xs, Ys: ys,
		Arrival: p.Arrival, EndpointArrival: p.EndpointArrival, Slack: p.Slack,
	}, nil
}
