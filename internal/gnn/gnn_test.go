package gnn

import (
	"path/filepath"
	"testing"

	"tsteiner/internal/flow"
	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

func prepared(t *testing.T, name string, scale float64) *flow.Prepared {
	t.Helper()
	p, err := flow.PrepareBenchmark(name, scale, flow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewBatchInvariants(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	// Node count = total tree nodes; sink arrays = total net sinks.
	wantNodes := 0
	wantSinks := 0
	for _, tr := range p.Forest.Trees {
		wantNodes += len(tr.Nodes)
	}
	for ni := range p.Design.Nets {
		wantSinks += len(p.Design.Nets[ni].Sinks)
	}
	if b.NNodes != wantNodes {
		t.Fatalf("NNodes=%d want %d", b.NNodes, wantNodes)
	}
	if len(b.SinkSinkPin) != wantSinks {
		t.Fatalf("sinks=%d want %d", len(b.SinkSinkPin), wantSinks)
	}
	if b.NSteiner != p.Forest.Stats().SteinerNodes {
		t.Fatalf("NSteiner=%d want %d", b.NSteiner, p.Forest.Stats().SteinerNodes)
	}
	if len(b.EdgePar) != p.Forest.Stats().TreeEdges {
		t.Fatalf("edges=%d want %d", len(b.EdgePar), p.Forest.Stats().TreeEdges)
	}
	// Every level entry's pins within range; endpoints match design.
	if len(b.Endpoints) != len(p.Design.Endpoints()) {
		t.Fatal("endpoint count mismatch")
	}
	// Levels: each sink appears exactly once.
	seen := make([]bool, len(b.SinkSinkPin))
	for _, L := range b.Levels {
		for _, s := range L.SinkIdx {
			if seen[s] {
				t.Fatal("sink assigned to two levels")
			}
			seen[s] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("sink %d missing from levels", i)
		}
	}
}

func TestBatchPathPairsConsistent(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	// Summing constant edge lengths via path pairs must equal a direct
	// per-tree BFS computation for a few sinks.
	lens := make([]float64, len(b.EdgePar))
	for e := range lens {
		// Compute from batch structure itself: child/parent positions via
		// forest topology is awkward here, so just check indices in range.
		if b.PathPairEdge[0] < 0 {
			t.Fatal("negative path pair edge")
		}
		_ = e
	}
	for i := range b.PathPairEdge {
		if int(b.PathPairEdge[i]) >= len(b.EdgePar) {
			t.Fatal("path pair edge out of range")
		}
		if int(b.PathPairSink[i]) >= len(b.SinkSinkPin) {
			t.Fatal("path pair sink out of range")
		}
	}
	for i := range b.SubPairAnchor {
		if int(b.SubPairAnchor[i]) >= len(b.EdgePar) || int(b.SubPairEdge[i]) >= len(b.EdgePar) {
			t.Fatal("subtree pair out of range")
		}
		if b.SubPairAnchor[i] == b.SubPairEdge[i] {
			t.Fatal("subtree pair includes self (must be strict descendants)")
		}
	}
}

func TestForwardShapesAndFiniteness(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig(), 7)
	tp := tensor.NewTape()
	xs, ys, err := b.SteinerLeaves(tp, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Forward(tp, b, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Arrival.Rows != p.Design.NumPins() {
		t.Fatalf("arrival rows=%d want %d", pred.Arrival.Rows, p.Design.NumPins())
	}
	if pred.Slack.Rows != len(b.Endpoints) {
		t.Fatal("slack length mismatch")
	}
	if err := tensor.CheckFinite(pred.Arrival); err != nil {
		t.Fatal(err)
	}
	// Arrivals are sums of softplus deltas: non-negative.
	for i, v := range pred.Arrival.Data {
		if v < 0 {
			t.Fatalf("negative predicted arrival %g at pin %d", v, i)
		}
	}
}

func TestGradientFlowsToSteinerCoords(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig(), 7)
	tp := tensor.NewTape()
	xs, ys, err := b.SteinerLeaves(tp, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Forward(tp, b, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := tp.Sum(pred.EndpointArrival)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	nz := 0
	for _, g := range xs.Grad {
		if g != 0 {
			nz++
		}
	}
	for _, g := range ys.Grad {
		if g != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("no gradient reached any Steiner coordinate")
	}
}

// TestSteinerGradientMatchesFiniteDifference gradchecks the position
// gradients on both evaluation paths: the plain allocating tape and a
// workspace-pooled tape reset between builds, so the pooled backward pass
// is held to the same finite-difference standard.
func TestSteinerGradientMatchesFiniteDifference(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig(), 7)
	xsv, _, _ := p.Forest.SteinerPositions()
	if len(xsv) == 0 {
		t.Skip("no Steiner points")
	}
	for _, tc := range []struct {
		name string
		ws   *tensor.Workspace
	}{
		{name: "allocating", ws: nil},
		{name: "workspace", ws: tensor.NewWorkspace()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, err := tensor.FromSlice(len(xsv), 1, xsv)
			if err != nil {
				t.Fatal(err)
			}
			build := func() (*tensor.Tensor, *tensor.Tape, error) {
				var tp *tensor.Tape
				if tc.ws != nil {
					tp = tc.ws.Tape()
				} else {
					tp = tensor.NewTape()
				}
				xr := &tensor.Tensor{Rows: x.Rows, Cols: 1, Data: x.Data}
				tp.Leaf(xr)
				xr.ZeroGrad()
				ysv := make([]float64, len(xsv))
				_, yv, _ := p.Forest.SteinerPositions()
				copy(ysv, yv)
				yt, _ := tensor.FromSlice(len(ysv), 1, ysv)
				tp.Constant(yt)
				pred, err := m.Forward(tp, b, xr, yt, false)
				if err != nil {
					return nil, nil, err
				}
				loss, err := tp.Sum(pred.EndpointArrival)
				if err != nil {
					return nil, nil, err
				}
				x.Grad = xr.Grad
				return loss, tp, nil
			}
			worst, err := tensor.GradCheck(x, build, 1e-4, 8)
			if err != nil {
				t.Fatal(err)
			}
			// Coordinates are O(100) and arrivals O(1); gradients are
			// O(1e-3). Allow loose tolerance for the |·| kinks and float
			// cancellation.
			if worst > 1e-5 {
				t.Errorf("Steiner coordinate gradient mismatch: %g", worst)
			}
		})
	}
}

func TestForwardDeterministic(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, _ := NewBatch(p.Design, p.Forest)
	m := NewModel(DefaultConfig(), 7)
	run := func() []float64 {
		tp := tensor.NewTape()
		xs, ys, err := b.SteinerLeaves(tp, p.Forest)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Forward(tp, b, xs, ys, false)
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), pred.Arrival.Data...)
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("forward not deterministic")
		}
	}
}

func TestMovingSteinerChangesPrediction(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, _ := NewBatch(p.Design, p.Forest)
	m := NewModel(DefaultConfig(), 7)
	evalSum := func(f *rsmt.Forest) float64 {
		tp := tensor.NewTape()
		xs, ys, err := b.SteinerLeaves(tp, f)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Forward(tp, b, xs, ys, false)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range pred.EndpointArrival.Data {
			s += v
		}
		return s
	}
	base := evalSum(p.Forest)
	moved := p.Forest.Clone()
	xs, ys, idx := moved.SteinerPositions()
	if len(idx) == 0 {
		t.Skip("no Steiner points")
	}
	for i := range xs {
		xs[i] += 15
		ys[i] -= 10
	}
	if err := moved.SetSteinerPositions(xs, ys, idx, p.Design.Die); err != nil {
		t.Fatal(err)
	}
	if evalSum(moved) == base {
		t.Fatal("prediction insensitive to Steiner movement")
	}
}

func TestEngineeredFeaturesMatchHandElmore(t *testing.T) {
	// Hand-built three-sink star: driver at origin, sinks on the axes.
	// The construction produces a known geometry whose Elmore surrogate
	// and path lengths we can compute by hand.
	l := lib.Default()
	bld := netlist.NewBuilder("hand", l)
	pi := bld.AddPI("drv")
	po1 := bld.AddPO("s1", 0.02)
	po2 := bld.AddPO("s2", 0.03)
	bld.Connect(pi, po1, po2)
	d, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d.Die = geom.BBox{XLo: 0, YLo: 0, XHi: 400, YHi: 400}
	d.Pin(pi).Pos = geom.Point{X: 0, Y: 0}
	d.Pin(po1).Pos = geom.Point{X: 100, Y: 0}
	d.Pin(po2).Pos = geom.Point{X: 200, Y: 0}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(d, f)
	if err != nil {
		t.Fatal(err)
	}
	elm, pathLen, netCap, err := b.EngineeredFeatures(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(elm) != 2 || len(pathLen) != 2 || len(netCap) != 1 {
		t.Fatalf("lengths: %d %d %d", len(elm), len(pathLen), len(netCap))
	}
	// Geometry: chain drv → s1 (100) → s2 (100). Path lengths 100, 200.
	// Sink order follows net.Sinks order (po1, po2).
	if pathLen[0] != 100 || pathLen[1] != 200 {
		t.Fatalf("pathLen=%v want [100 200]", pathLen)
	}
	r, c := b.RAvg, b.CAvg
	// Downstream of edge drv→s1: both wire segments + both sink caps;
	// downstream of s1→s2: the far segment + s2's cap.
	capE1 := c*200 + 0.02 + 0.03
	capE2 := c*100 + 0.03
	wantElm1 := r * 100 * capE1
	wantElm2 := wantElm1 + r*100*capE2
	if diff := elm[0] - wantElm1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("elm[0]=%g want %g", elm[0], wantElm1)
	}
	if diff := elm[1] - wantElm2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("elm[1]=%g want %g", elm[1], wantElm2)
	}
	wantCap := c*200 + 0.05
	if diff := netCap[0] - wantCap; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("netCap=%g want %g", netCap[0], wantCap)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := NewModel(DefaultConfig(), 42)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := m.Params(), m2.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("param %d differs after round trip", i)
			}
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestBatchForestMismatch(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, _ := NewBatch(p.Design, p.Forest)
	other := prepared(t, "cic_decimator", 1.0)
	tp := tensor.NewTape()
	if _, _, err := b.SteinerLeaves(tp, other.Forest); err == nil {
		t.Fatal("foreign forest accepted")
	}
	short := &rsmt.Forest{Trees: p.Forest.Trees[:1]}
	if _, err := NewBatch(p.Design, short); err == nil {
		t.Fatal("short forest accepted")
	}
}

func TestModelSeedsDiffer(t *testing.T) {
	a := NewModel(DefaultConfig(), 1)
	b := NewModel(DefaultConfig(), 2)
	same := true
	for i := range a.WNode.Data {
		if a.WNode.Data[i] != b.WNode.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical init")
	}
	// Bad config falls back to defaults.
	c := NewModel(Config{}, 3)
	if c.Cfg.Hidden != DefaultConfig().Hidden {
		t.Fatal("bad config not defaulted")
	}
}
