package gnn

import (
	"testing"

	"tsteiner/internal/flow"
	"tsteiner/internal/tensor"
)

func benchBatch(b *testing.B) (*Batch, *flow.Prepared) {
	b.Helper()
	p, err := flow.PrepareBenchmark("APU", 1.0, flow.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	bt, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		b.Fatal(err)
	}
	return bt, p
}

func BenchmarkForward(b *testing.B) {
	bt, p := benchBatch(b)
	m := NewModel(DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := tensor.NewTape()
		xs, ys, err := bt.SteinerLeaves(tp, p.Forest)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Forward(tp, bt, xs, ys, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	bt, p := benchBatch(b)
	m := NewModel(DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := tensor.NewTape()
		xs, ys, err := bt.SteinerLeaves(tp, p.Forest)
		if err != nil {
			b.Fatal(err)
		}
		pred, err := m.Forward(tp, bt, xs, ys, false)
		if err != nil {
			b.Fatal(err)
		}
		loss, err := tp.Sum(pred.EndpointArrival)
		if err != nil {
			b.Fatal(err)
		}
		if err := tp.Backward(loss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewBatch(b *testing.B) {
	_, p := benchBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBatch(p.Design, p.Forest); err != nil {
			b.Fatal(err)
		}
	}
}
