// Package gnn implements the paper's customized sign-off timing
// evaluation model (Fig. 3): a two-stage message-passing network that
// first fuses Steiner-tree geometry into pin embeddings (broadcast along
// Steiner edges, reduce along net edges) and then propagates arrival-time
// predictions over the netlist graph in topological order.
//
// The critical property is differentiability with respect to Steiner point
// coordinates: every geometric quantity — edge lengths, per-sink path
// lengths, a differentiable Elmore surrogate, net capacitance — is built
// from tensor ops over the (X_s, Y_s) leaves, so backward propagation
// yields the per-point timing gradients Algorithm 1 consumes.
package gnn

import (
	"fmt"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/tensor"
)

// Level groups the netlist-graph work of one topological rank.
type Level struct {
	// SinkIdx indexes the batch's global sink arrays: net sinks whose pin
	// sits at this level.
	SinkIdx []int32
	// Cell arcs whose output pin sits at this level.
	ArcIn  []int32 // input pin per arc
	ArcOut []int32 // output pin per arc (repeated across arcs of a cell)
	// ArcOutLocal maps each arc to a compact output index within the
	// level; OutPins lists those outputs' pin ids.
	ArcOutLocal []int32
	OutPins     []int32
	// ArcNet is the net driven by the arc's output (index into trees),
	// or -1 when the output is unconnected.
	ArcNet []int32
	// ArcFeats are per-arc constant features [nArcs × 2]: nominal delay
	// and load slope extracted from the library LUTs.
	ArcFeats []float64

	// Derived constants precomputed by finalizeDerived so Forward never
	// rebuilds them: driver/sink pin ids per level sink, the clamped net
	// index and connected-output mask per arc, and ArcFeats split into
	// d0/slope columns for the anchored delay model.
	SinkDrvPin, SinkSnkPin []int32
	ArcNetIdx              []int32
	ArcLoadMask            []float64
	ArcD0, ArcSlope        []float64
}

// Batch is the tensorized graph pair (Steiner graph + netlist graph) of
// one design/forest, ready for Model.Forward.
type Batch struct {
	Design *netlist.Design

	// ---- Steiner graph ----
	NNodes int
	// SrcIdx maps each global tree node to a row of the combined
	// coordinate vector [steiner variables ; constant pin coords].
	SrcIdx []int32
	// NSteiner is the number of Steiner variables; SteinerIndex addresses
	// them in the forest (same order as rsmt.SteinerPositions).
	NSteiner     int
	SteinerIndex []rsmt.SteinerRef
	// ConstPinX/Y hold the fixed coordinates of pin nodes, in first-seen
	// order (rows NSteiner.. of the combined vector).
	ConstPinX, ConstPinY []float64
	// NodeFeats [NNodes × 4]: isSteiner, isDriver, pinCap(norm), degree(norm).
	NodeFeats []float64
	// Tree edges oriented away from the driver.
	EdgePar, EdgeChild, EdgeTree []int32
	NTrees                       int
	// PinCapBelowEdge[e] is the constant pin capacitance hanging below
	// edge e (its child-side subtree).
	PinCapBelowEdge []float64
	// Subtree pairs: for each edge a, every strict descendant edge b.
	SubPairAnchor, SubPairEdge []int32
	// PinCapSumTree[t] is the total sink pin cap of tree t.
	PinCapSumTree []float64
	// NetHPWL[t] is the half-perimeter wirelength of net t's pins — the
	// tree-free wirelength estimate used by the NoSteinerFeatures model
	// variant.
	NetHPWL []float64

	// ---- global sink arrays (one entry per netlist net edge) ----
	SinkDriverPin, SinkSinkPin []int32 // netlist pin ids
	SinkTreeNode, SinkDrvNode  []int32 // global Steiner-graph node ids
	SinkNet                    []int32
	SinkDistDirect             []float64 // constant driver→sink Manhattan distance
	// Path pairs: for each sink s, every tree edge on its driver path.
	PathPairSink, PathPairEdge []int32

	// ---- netlist propagation ----
	Levels []Level
	NPins  int
	// Startpoint boundary conditions.
	QPins, QNet   []int32 // register outputs and their nets
	QFeats        []float64
	// QFeats split into d0/slope columns (finalizeDerived).
	QD0, QSlope []float64
	PIPins, PINet []int32
	// Endpoints and their required times.
	Endpoints   []int32
	EndpointReq []float64

	// Feature normalization constants.
	LenScale, CapScale, ElmScale float64
	RAvg, CAvg                   float64
}

// NewBatch tensorizes a placed design and its Steiner forest. The forest's
// topology is frozen into the batch; only Steiner coordinates vary between
// Forward calls.
func NewBatch(d *netlist.Design, f *rsmt.Forest) (*Batch, error) {
	if len(f.Trees) != len(d.Nets) {
		return nil, fmt.Errorf("gnn: forest/netlist mismatch")
	}
	b := &Batch{Design: d, NTrees: len(f.Trees), NPins: d.NumPins()}
	l := d.Lib
	b.RAvg, b.CAvg = rc.AvgLayerRC(l)
	dieW := float64(d.Die.Width())
	if dieW <= 0 {
		return nil, fmt.Errorf("gnn: design has no die")
	}
	b.LenScale = 1 / dieW
	b.CapScale = 1 / (b.CAvg*dieW + 1e-12)
	b.ElmScale = 1 / (b.RAvg * b.CAvg * dieW * dieW / 2)

	if err := b.buildSteinerGraph(d, f); err != nil {
		return nil, err
	}
	if err := b.buildNetlistLevels(d); err != nil {
		return nil, err
	}
	b.finalizeDerived()
	return b, nil
}

// splitPairs decomposes [d0, slope] feature pairs into two columns.
func splitPairs(feats []float64) (d0, slope []float64) {
	n := len(feats) / 2
	d0 = make([]float64, n)
	slope = make([]float64, n)
	for i := 0; i < n; i++ {
		d0[i] = feats[2*i]
		slope[i] = feats[2*i+1]
	}
	return d0, slope
}

// finalizeDerived precomputes the per-level and per-startpoint constant
// arrays Forward used to rebuild on every call: they depend only on the
// frozen topology, so computing them once removes per-iteration
// allocation from the evaluation hot path.
func (b *Batch) finalizeDerived() {
	b.QD0, b.QSlope = splitPairs(b.QFeats)
	for li := range b.Levels {
		L := &b.Levels[li]
		L.SinkDrvPin = make([]int32, len(L.SinkIdx))
		L.SinkSnkPin = make([]int32, len(L.SinkIdx))
		for i, s := range L.SinkIdx {
			L.SinkDrvPin[i] = b.SinkDriverPin[s]
			L.SinkSnkPin[i] = b.SinkSinkPin[s]
		}
		L.ArcNetIdx = make([]int32, len(L.ArcIn))
		L.ArcLoadMask = make([]float64, len(L.ArcIn))
		for i, nt := range L.ArcNet {
			if nt >= 0 {
				L.ArcNetIdx[i] = nt
				L.ArcLoadMask[i] = 1
			}
		}
		L.ArcD0, L.ArcSlope = splitPairs(L.ArcFeats)
	}
}

// buildSteinerGraph assembles the global node/edge arrays and the
// engineered-feature index pairs.
func (b *Batch) buildSteinerGraph(d *netlist.Design, f *rsmt.Forest) error {
	// First the Steiner variables, in forest order (matching
	// rsmt.SteinerPositions).
	_, _, index := f.SteinerPositions()
	b.SteinerIndex = index
	b.NSteiner = len(index)
	varOf := map[[2]int32]int32{}
	for i, ref := range index {
		varOf[[2]int32{ref.Tree, ref.Node}] = int32(i)
	}

	// Global node ids.
	nodeBase := make([]int32, len(f.Trees)+1)
	total := 0
	for ti, tr := range f.Trees {
		nodeBase[ti] = int32(total)
		total += len(tr.Nodes)
	}
	nodeBase[len(f.Trees)] = int32(total)
	b.NNodes = total
	b.SrcIdx = make([]int32, total)
	b.NodeFeats = make([]float64, total*4)

	// sinkNodeOf[pin] per net: filled while walking trees.
	type sinkLoc struct{ node int32 }
	sinkNode := map[[2]int32]int32{} // (net, pin) -> global node
	_ = sinkLoc{}

	for ti, tr := range f.Trees {
		adjCount := make([]int, len(tr.Nodes))
		for _, e := range tr.Edges {
			adjCount[e.A]++
			adjCount[e.B]++
		}
		for ni := range tr.Nodes {
			g := nodeBase[ti] + int32(ni)
			nd := &tr.Nodes[ni]
			if nd.Kind == rsmt.SteinerNode {
				b.SrcIdx[g] = varOf[[2]int32{int32(ti), int32(ni)}]
				b.NodeFeats[g*4+0] = 1
			} else {
				b.SrcIdx[g] = int32(b.NSteiner + len(b.ConstPinX))
				p := d.Pin(nd.Pin)
				b.ConstPinX = append(b.ConstPinX, float64(p.Pos.X))
				b.ConstPinY = append(b.ConstPinY, float64(p.Pos.Y))
				if ni == 0 {
					b.NodeFeats[g*4+1] = 1 // driver flag
				} else {
					sinkNode[[2]int32{int32(ti), int32(nd.Pin)}] = g
				}
				b.NodeFeats[g*4+2] = p.Cap * 100 // pF → O(1)
			}
			b.NodeFeats[g*4+3] = float64(adjCount[ni]) / 4
		}

		// Orient edges away from the driver (BFS from node 0) and record
		// per-edge structural constants.
		parent, parentEdge, order, err := orientTree(tr)
		if err != nil {
			return fmt.Errorf("gnn: net %d: %w", tr.Net, err)
		}
		base := nodeBase[ti]
		// Per-node pin cap for subtree sums.
		nodePinCap := make([]float64, len(tr.Nodes))
		for ni := range tr.Nodes {
			if tr.Nodes[ni].Kind == rsmt.PinNode && ni != 0 {
				nodePinCap[ni] = d.Pin(tr.Nodes[ni].Pin).Cap
			}
		}
		// Edge ids in batch order for this tree, indexed by tree edge idx.
		edgeGlobal := make([]int32, len(tr.Edges))
		for _, v := range order[1:] { // skip root
			eIdx := parentEdge[v]
			edgeGlobal[eIdx] = int32(len(b.EdgePar))
			b.EdgePar = append(b.EdgePar, base+parent[v])
			b.EdgeChild = append(b.EdgeChild, base+int32(v))
			b.EdgeTree = append(b.EdgeTree, int32(ti))
		}
		// Subtree pin caps and descendant-edge pairs via reverse order.
		subPinCap := make([]float64, len(tr.Nodes))
		copy(subPinCap, nodePinCap)
		for i := len(order) - 1; i >= 1; i-- {
			v := order[i]
			subPinCap[parent[v]] += subPinCap[v]
		}
		treeCap := 0.0
		for ni := range tr.Nodes {
			treeCap += nodePinCap[ni]
		}
		b.PinCapSumTree = append(b.PinCapSumTree, treeCap)
		// Netlist-only wirelength estimate (no tree knowledge).
		netOfTree := d.Net(tr.Net)
		bb := geom.EmptyBBox()
		bb = bb.Expand(d.Pin(netOfTree.Driver).Pos)
		for _, sp := range netOfTree.Sinks {
			bb = bb.Expand(d.Pin(sp).Pos)
		}
		b.NetHPWL = append(b.NetHPWL, float64(bb.HalfPerimeter()))
		// PinCapBelowEdge: for edge (parent→v): subPinCap[v].
		pinCapBelow := make([]float64, len(tr.Edges))
		for _, v := range order[1:] {
			pinCapBelow[parentEdge[v]] = subPinCap[v]
		}
		// Extend the global array for this tree's edges, then fill via the
		// local→global edge map.
		b.PinCapBelowEdge = append(b.PinCapBelowEdge, make([]float64, len(tr.Edges))...)
		for ei := range tr.Edges {
			b.PinCapBelowEdge[edgeGlobal[ei]] = pinCapBelow[ei]
		}
		// Descendant pairs: walk each node's path to root, adding
		// (ancestorEdge, thisEdge) pairs (strict descendants).
		for _, v := range order[1:] {
			myEdge := edgeGlobal[parentEdge[v]]
			for a := parent[v]; a > 0; a = parent[a] {
				ancEdge := edgeGlobal[parentEdge[a]]
				b.SubPairAnchor = append(b.SubPairAnchor, ancEdge)
				b.SubPairEdge = append(b.SubPairEdge, myEdge)
			}
		}

		// Sink arrays and path pairs.
		net := d.Net(tr.Net)
		drvNode := base // node 0
		for _, spid := range net.Sinks {
			g, ok := sinkNode[[2]int32{int32(ti), int32(spid)}]
			if !ok {
				return fmt.Errorf("gnn: net %s sink %d missing in tree", net.Name, spid)
			}
			sIdx := int32(len(b.SinkSinkPin))
			b.SinkDriverPin = append(b.SinkDriverPin, int32(net.Driver))
			b.SinkSinkPin = append(b.SinkSinkPin, int32(spid))
			b.SinkTreeNode = append(b.SinkTreeNode, g)
			b.SinkDrvNode = append(b.SinkDrvNode, drvNode)
			b.SinkNet = append(b.SinkNet, int32(ti))
			dd := d.Pin(net.Driver).Pos
			sp := d.Pin(spid).Pos
			dx := dd.X - sp.X
			if dx < 0 {
				dx = -dx
			}
			dy := dd.Y - sp.Y
			if dy < 0 {
				dy = -dy
			}
			b.SinkDistDirect = append(b.SinkDistDirect, float64(dx+dy))
			// Path: walk v = sink node up to root.
			v := g - base
			for v != 0 {
				b.PathPairSink = append(b.PathPairSink, sIdx)
				b.PathPairEdge = append(b.PathPairEdge, edgeGlobal[parentEdge[v]])
				v = parent[v]
			}
		}
	}
	return nil
}

// orientTree BFS-orients a tree from node 0, returning parent node,
// parent edge index, and BFS order.
func orientTree(tr *rsmt.Tree) (parent []int32, parentEdge []int32, order []int32, err error) {
	n := len(tr.Nodes)
	adj := make([][]int32, n)
	adjEdge := make([][]int32, n)
	for ei, e := range tr.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
		adjEdge[e.A] = append(adjEdge[e.A], int32(ei))
		adjEdge[e.B] = append(adjEdge[e.B], int32(ei))
	}
	parent = make([]int32, n)
	parentEdge = make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	order = append(order, 0)
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for k, v := range adj[u] {
			if parent[v] == -2 {
				parent[v] = u
				parentEdge[v] = adjEdge[u][k]
				order = append(order, v)
			}
		}
	}
	if len(order) != n {
		return nil, nil, nil, fmt.Errorf("tree disconnected")
	}
	return parent, parentEdge, order, nil
}

// buildNetlistLevels computes topological pin levels and groups net edges
// and cell arcs per level.
func (b *Batch) buildNetlistLevels(d *netlist.Design) error {
	order, err := d.TopoOrder()
	if err != nil {
		return err
	}
	fanin := d.FaninEdges()
	level := make([]int32, d.NumPins())
	maxLevel := int32(0)
	for _, pid := range order {
		lv := int32(0)
		for _, pred := range fanin[pid] {
			if level[pred]+1 > lv {
				lv = level[pred] + 1
			}
		}
		level[pid] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	b.Levels = make([]Level, maxLevel+1)

	// Net sinks by sink pin level.
	for sIdx := range b.SinkSinkPin {
		lv := level[b.SinkSinkPin[sIdx]]
		b.Levels[lv].SinkIdx = append(b.Levels[lv].SinkIdx, int32(sIdx))
	}

	// Cell arcs by output pin level; startpoint boundary conditions.
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		out := inst.OutputPin()
		net := d.Pin(out).Net
		if inst.Master.Sequential {
			arc := inst.Master.ArcFrom("CK")
			if arc == nil || net == netlist.NoID {
				continue
			}
			b.QPins = append(b.QPins, int32(out))
			b.QNet = append(b.QNet, int32(net))
			d0, slope := arcConsts(arc)
			b.QFeats = append(b.QFeats, d0, slope)
			continue
		}
		lv := level[out]
		L := &b.Levels[lv]
		outLocal := int32(len(L.OutPins))
		L.OutPins = append(L.OutPins, int32(out))
		for i, in := range inst.InputPins() {
			arc := inst.Master.ArcFrom(inst.Master.Inputs[i])
			if arc == nil {
				continue
			}
			L.ArcIn = append(L.ArcIn, int32(in))
			L.ArcOut = append(L.ArcOut, int32(out))
			L.ArcOutLocal = append(L.ArcOutLocal, outLocal)
			if net == netlist.NoID {
				L.ArcNet = append(L.ArcNet, -1)
			} else {
				L.ArcNet = append(L.ArcNet, int32(net))
			}
			d0, slope := arcConsts(arc)
			L.ArcFeats = append(L.ArcFeats, d0, slope)
		}
	}
	for _, pid := range d.PIs {
		if net := d.Pin(pid).Net; net != netlist.NoID {
			b.PIPins = append(b.PIPins, int32(pid))
			b.PINet = append(b.PINet, int32(net))
		}
	}

	// Endpoints.
	for _, e := range d.Endpoints() {
		req := d.ClockPeriod
		p := d.Pin(e)
		if !p.IsPort {
			req -= d.Cell(p.Cell).Master.Setup
		}
		b.Endpoints = append(b.Endpoints, int32(e))
		b.EndpointReq = append(b.EndpointReq, req)
	}
	return nil
}

// arcConsts summarizes a delay LUT by its nominal value and load slope —
// the constant per-arc features the cell-delay head consumes.
func arcConsts(arc *lib.Arc) (d0, slope float64) {
	d0 = arc.Delay.Lookup(0.05, 0.01)
	slope = (arc.Delay.Lookup(0.05, 0.20) - d0) / 0.19
	return d0, slope
}

// Labels extracts per-pin ground-truth arrivals from a sign-off STA
// result, the training target of the evaluator.
func Labels(res *sta.Result) []float64 {
	return append([]float64(nil), res.Arrival...)
}

// EngineeredFeatures evaluates the differentiable parasitic features the
// model's heads consume — per-sink Elmore surrogate and driver→sink path
// length (both from tree geometry), plus per-net capacitance — without
// gradients. Sinks are indexed in the batch's global sink order; nets in
// tree order. Exposed for analysis and validated against hand-computed
// Elmore in tests.
func (b *Batch) EngineeredFeatures(f *rsmt.Forest) (elm, pathLen, netCap []float64, err error) {
	tp := tensor.NewTape()
	xsv, ysv, idx := f.SteinerPositions()
	if len(idx) != b.NSteiner {
		return nil, nil, nil, fmt.Errorf("gnn: forest has %d Steiner vars, batch %d", len(idx), b.NSteiner)
	}
	xs, _ := tensor.FromSlice(len(xsv), 1, xsv)
	ys, _ := tensor.FromSlice(len(ysv), 1, ysv)
	tp.Constant(xs)
	tp.Constant(ys)
	pinX, _ := tensor.FromSlice(len(b.ConstPinX), 1, b.ConstPinX)
	pinY, _ := tensor.FromSlice(len(b.ConstPinY), 1, b.ConstPinY)
	tp.Constant(pinX)
	tp.Constant(pinY)
	combX, err := tp.ConcatRows(xs, pinX)
	if err != nil {
		return nil, nil, nil, err
	}
	combY, _ := tp.ConcatRows(ys, pinY)
	nodeX, err := tp.GatherRows(combX, b.SrcIdx)
	if err != nil {
		return nil, nil, nil, err
	}
	nodeY, _ := tp.GatherRows(combY, b.SrcIdx)

	// Edge lengths.
	ax, _ := tp.GatherRows(nodeX, b.EdgePar)
	bx, _ := tp.GatherRows(nodeX, b.EdgeChild)
	ay, _ := tp.GatherRows(nodeY, b.EdgePar)
	by, _ := tp.GatherRows(nodeY, b.EdgeChild)
	dx, _ := tp.Sub(ax, bx)
	dy, _ := tp.Sub(ay, by)
	adx, _ := tp.Abs(dx)
	ady, _ := tp.Abs(dy)
	lenE, err := tp.Add(adx, ady)
	if err != nil {
		return nil, nil, nil, err
	}

	gSub, _ := tp.GatherRows(lenE, b.SubPairEdge)
	descLen, err := tp.SegmentSum(gSub, b.SubPairAnchor, len(b.EdgePar))
	if err != nil {
		return nil, nil, nil, err
	}
	subLen, _ := tp.Add(lenE, descLen)
	wireCapDown, _ := tp.Scale(subLen, b.CAvg)
	pinCapBelow, _ := tensor.FromSlice(len(b.PinCapBelowEdge), 1, b.PinCapBelowEdge)
	tp.Constant(pinCapBelow)
	capDown, _ := tp.Add(wireCapDown, pinCapBelow)
	rE, _ := tp.Scale(lenE, b.RAvg)
	elmE, err := tp.Mul(rE, capDown)
	if err != nil {
		return nil, nil, nil, err
	}
	nSinks := len(b.SinkSinkPin)
	gElm, _ := tp.GatherRows(elmE, b.PathPairEdge)
	elmT, err := tp.SegmentSum(gElm, b.PathPairSink, nSinks)
	if err != nil {
		return nil, nil, nil, err
	}
	gLen, _ := tp.GatherRows(lenE, b.PathPairEdge)
	pathT, _ := tp.SegmentSum(gLen, b.PathPairSink, nSinks)
	treeLen, _ := tp.SegmentSum(lenE, b.EdgeTree, b.NTrees)
	wireCapT, _ := tp.Scale(treeLen, b.CAvg)
	pinCapT, _ := tensor.FromSlice(len(b.PinCapSumTree), 1, b.PinCapSumTree)
	tp.Constant(pinCapT)
	capT, err := tp.Add(wireCapT, pinCapT)
	if err != nil {
		return nil, nil, nil, err
	}
	return append([]float64(nil), elmT.Data...),
		append([]float64(nil), pathT.Data...),
		append([]float64(nil), capT.Data...), nil
}

// SteinerLeaves creates the (X_s, Y_s) leaf tensors for a forest snapshot
// on the given tape, in the batch's variable order.
func (b *Batch) SteinerLeaves(tp *tensor.Tape, f *rsmt.Forest) (xs, ys *tensor.Tensor, err error) {
	xsv := make([]float64, b.NSteiner)
	ysv := make([]float64, b.NSteiner)
	if err := b.FillSteinerCoords(f, xsv, ysv); err != nil {
		return nil, nil, err
	}
	return b.LeavesFromCoords(tp, xsv, ysv)
}

// FillSteinerCoords writes the forest's Steiner coordinates into
// caller-owned buffers (each of length NSteiner, the batch's variable
// order), validating that the forest still has the batch's topology.
// The allocation-free core of SteinerLeaves for the refine hot path.
func (b *Batch) FillSteinerCoords(f *rsmt.Forest, xs, ys []float64) error {
	if len(xs) != b.NSteiner || len(ys) != b.NSteiner {
		return fmt.Errorf("gnn: coordinate buffers of %d/%d for %d Steiner vars", len(xs), len(ys), b.NSteiner)
	}
	n := 0
	for ti, t := range f.Trees {
		for ni := range t.Nodes {
			if t.Nodes[ni].Kind != rsmt.SteinerNode {
				continue
			}
			if n >= b.NSteiner {
				return fmt.Errorf("gnn: forest has more than %d Steiner vars", b.NSteiner)
			}
			if ref := (rsmt.SteinerRef{Tree: int32(ti), Node: int32(ni)}); ref != b.SteinerIndex[n] {
				return fmt.Errorf("gnn: forest topology differs from batch at var %d", n)
			}
			xs[n] = t.Nodes[ni].Pos.X
			ys[n] = t.Nodes[ni].Pos.Y
			n++
		}
	}
	if n != b.NSteiner {
		return fmt.Errorf("gnn: forest has %d Steiner vars, batch %d", n, b.NSteiner)
	}
	return nil
}

// LeavesFromCoords builds the (X_s, Y_s) leaf tensors from coordinate
// slices already in batch variable order, copying into tape-owned
// (workspace-pooled, when available) storage.
func (b *Batch) LeavesFromCoords(tp *tensor.Tape, xs, ys []float64) (*tensor.Tensor, *tensor.Tensor, error) {
	xt, err := tp.CopyIn(len(xs), 1, xs)
	if err != nil {
		return nil, nil, err
	}
	yt, err := tp.CopyIn(len(ys), 1, ys)
	if err != nil {
		return nil, nil, err
	}
	return tp.Leaf(xt), tp.Leaf(yt), nil
}
