package gnn

import (
	"testing"
)

func TestModelCloneIsDeepAndValueIdentical(t *testing.T) {
	m := NewModel(DefaultConfig(), 7)
	c := m.Clone()
	mp, cp := m.Params(), c.Params()
	if len(mp) != len(cp) {
		t.Fatalf("param count %d vs %d", len(mp), len(cp))
	}
	for i := range mp {
		if mp[i] == cp[i] {
			t.Fatalf("param %d shared between model and clone", i)
		}
		if len(mp[i].Data) != len(cp[i].Data) {
			t.Fatalf("param %d shape mismatch", i)
		}
		for j := range mp[i].Data {
			if mp[i].Data[j] != cp[i].Data[j] {
				t.Fatalf("param %d element %d differs", i, j)
			}
		}
	}
	// Mutating the clone must not touch the original.
	cp[0].Data[0] += 1
	if mp[0].Data[0] == cp[0].Data[0] {
		t.Fatal("clone shares parameter storage with the original")
	}
	if c.Cfg != m.Cfg {
		t.Fatalf("config not preserved: %+v vs %+v", c.Cfg, m.Cfg)
	}
}
