package gnn

import (
	"testing"

	"tsteiner/internal/tensor"
)

// candidateCoords builds K deterministic candidate coordinate sets around
// the forest's current Steiner positions, lane-major.
func candidateCoords(t *testing.T, b *Batch, base *[2][]float64, K int) (xs, ys []float64) {
	t.Helper()
	n := b.NSteiner
	xs = make([]float64, K*n)
	ys = make([]float64, K*n)
	for k := 0; k < K; k++ {
		for i := 0; i < n; i++ {
			xs[k*n+i] = base[0][i] + float64(k)*7.5
			ys[k*n+i] = base[1][i] - float64(k)*4.25
		}
	}
	return xs, ys
}

// TestBatchedForwardMatchesSequential is the byte-equivalence gate for
// the fused K-candidate forward: batched K=1 must equal the existing
// Forward exactly, and lane k of a K-lane pass must equal the k-th of K
// sequential Forward calls exactly — on both the allocating and the
// workspace paths.
func TestBatchedForwardMatchesSequential(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig(), 7)
	bx, by, _ := p.Forest.SteinerPositions()
	if len(bx) == 0 {
		t.Skip("no Steiner points")
	}
	base := [2][]float64{bx, by}
	const K = 4
	cx, cy := candidateCoords(t, b, &base, K)
	n := b.NSteiner

	seqForward := func(tp *tensor.Tape, k int) *Prediction {
		xs, ys, err := b.LeavesFromCoords(tp, cx[k*n:(k+1)*n], cy[k*n:(k+1)*n])
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Forward(tp, b, xs, ys, false)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}

	for _, tc := range []struct {
		name string
		ws   *tensor.Workspace
	}{
		{name: "allocating"},
		{name: "workspace", ws: tensor.NewWorkspace()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tape := func() *tensor.Tape {
				if tc.ws != nil {
					return tc.ws.Tape()
				}
				return tensor.NewTape()
			}

			// K=1 batched vs plain Forward.
			bp1, err := m.ForwardBatch(tape(), b, 1, cx[:n], cy[:n], false)
			if err != nil {
				t.Fatal(err)
			}
			arr1 := append([]float64(nil), bp1.Arrival.Data...)
			slack1 := append([]float64(nil), bp1.Slack.Data...)
			ref := seqForward(tape(), 0)
			for i := range ref.Arrival.Data {
				if arr1[i] != ref.Arrival.Data[i] {
					t.Fatalf("K=1 arrival[%d]: batched %v != Forward %v", i, arr1[i], ref.Arrival.Data[i])
				}
			}
			for i := range ref.Slack.Data {
				if slack1[i] != ref.Slack.Data[i] {
					t.Fatalf("K=1 slack[%d] mismatch", i)
				}
			}

			// K-lane batched vs K sequential calls.
			bpK, err := m.ForwardBatch(tape(), b, K, cx, cy, false)
			if err != nil {
				t.Fatal(err)
			}
			if bpK.Arrival.LaneCount() != K || bpK.Slack.LaneCount() != K {
				t.Fatalf("lanes=%d/%d want %d", bpK.Arrival.LaneCount(), bpK.Slack.LaneCount(), K)
			}
			arrK := append([]float64(nil), bpK.Arrival.Data...)
			slackK := append([]float64(nil), bpK.Slack.Data...)
			epK := append([]float64(nil), bpK.EndpointArrival.Data...)
			arrStride := bpK.Arrival.Rows
			slackStride := bpK.Slack.Rows
			for k := 0; k < K; k++ {
				pred := seqForward(tape(), k)
				for i, v := range pred.Arrival.Data {
					if arrK[k*arrStride+i] != v {
						t.Fatalf("lane %d arrival[%d]: batched %v != sequential %v", k, i, arrK[k*arrStride+i], v)
					}
				}
				for i, v := range pred.Slack.Data {
					if slackK[k*slackStride+i] != v {
						t.Fatalf("lane %d slack[%d] mismatch", k, i)
					}
				}
				for i, v := range pred.EndpointArrival.Data {
					if epK[k*slackStride+i] != v {
						t.Fatalf("lane %d endpoint arrival[%d] mismatch", k, i)
					}
				}
			}
		})
	}
}

// TestBatchedGradientMatchesSequential pins the lane-granular gradient
// contract the refine loop's memo relies on: Backward through a
// lane-sliced loss of a K-lane forward yields, in lane k of the leaf
// gradients, exactly the gradient a sequential forward+backward on
// candidate k produces — and exact +0.0 in every other lane.
func TestBatchedGradientMatchesSequential(t *testing.T) {
	p := prepared(t, "spm", 1.0)
	b, err := NewBatch(p.Design, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig(), 7)
	bx, by, _ := p.Forest.SteinerPositions()
	if len(bx) == 0 {
		t.Skip("no Steiner points")
	}
	base := [2][]float64{bx, by}
	const K = 3
	cx, cy := candidateCoords(t, b, &base, K)
	n := b.NSteiner
	const pick = 1 // lane whose gradient we extract

	ws := tensor.NewWorkspace()
	tp := ws.Tape()
	bp, err := m.ForwardBatch(tp, b, K, cx, cy, false)
	if err != nil {
		t.Fatal(err)
	}
	perLane, err := tp.Sum(bp.EndpointArrival) // K-lane scalar
	if err != nil {
		t.Fatal(err)
	}
	loss, err := tp.SliceLane(perLane, pick)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	gx := append([]float64(nil), bp.Xs.Grad...)
	gy := append([]float64(nil), bp.Ys.Grad...)

	stp := tensor.NewTape()
	xs, ys, err := b.LeavesFromCoords(stp, cx[pick*n:(pick+1)*n], cy[pick*n:(pick+1)*n])
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Forward(stp, b, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	sloss, err := stp.Sum(pred.EndpointArrival)
	if err != nil {
		t.Fatal(err)
	}
	if err := stp.Backward(sloss); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if gx[pick*n+i] != xs.Grad[i] || gy[pick*n+i] != ys.Grad[i] {
			t.Fatalf("picked-lane grad[%d]: batched (%v,%v) != sequential (%v,%v)",
				i, gx[pick*n+i], gy[pick*n+i], xs.Grad[i], ys.Grad[i])
		}
	}
	for k := 0; k < K; k++ {
		if k == pick {
			continue
		}
		for i := 0; i < n; i++ {
			if gx[k*n+i] != 0 || gy[k*n+i] != 0 {
				t.Fatalf("unpicked lane %d grad[%d] = (%v,%v), want exact zero", k, i, gx[k*n+i], gy[k*n+i])
			}
		}
	}
}
