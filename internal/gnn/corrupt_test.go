package gnn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsteiner/internal/guard"
)

// TestLoadRejectsCorruptModelFault: a truncated or garbled model file must
// be rejected with a *guard.CorruptError, never a partial decode.
func TestLoadRejectsCorruptModelFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := NewModel(DefaultConfig(), 42)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated": data[:len(data)/2],
		"garbage":   []byte("{{{{"),
		"empty":     nil,
	}
	for name, bad := range cases {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(p)
		var ce *guard.CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: got %v, want *guard.CorruptError", name, err)
		}
	}
}

// TestSaveIsAtomic: saving over an existing model file must leave no temp
// litter, and the destination always parses.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	for seed := int64(1); seed <= 3; seed++ {
		if err := NewModel(DefaultConfig(), seed).Save(path); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want only the model file", len(ents))
	}
}

// TestSnapshotRestoreParams round-trips parameter values and rejects
// mismatched shapes.
func TestSnapshotRestoreParams(t *testing.T) {
	m := NewModel(DefaultConfig(), 7)
	snap := m.SnapshotParams()
	other := NewModel(DefaultConfig(), 8)
	if err := other.RestoreParams(snap); err != nil {
		t.Fatal(err)
	}
	pa, pb := m.Params(), other.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("param %d differs after restore", i)
			}
		}
	}
	// Mutating the snapshot must not alias the source model.
	snap[0][0] = 1e9
	if pa[0].Data[0] == 1e9 {
		t.Fatal("snapshot aliases model data")
	}
	if err := other.RestoreParams(snap[:1]); err == nil {
		t.Fatal("restore accepted short snapshot")
	}
	snap[1] = snap[1][:1]
	if err := other.RestoreParams(snap); err == nil {
		t.Fatal("restore accepted short tensor")
	}
}
