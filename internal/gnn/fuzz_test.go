package gnn_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
)

// FuzzLoadModel throws arbitrary bytes at the model decoder. Contract:
// any input yields either a structurally sound model or a
// *guard.CorruptError — never a panic and never an oversized
// allocation (layer widths are bounds-checked before tensors are
// built).
func FuzzLoadModel(f *testing.F) {
	m := gnn.NewModel(gnn.DefaultConfig(), 1)
	path := filepath.Join(f.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Cfg":{"Hidden":8,"WireHidden":8,"CellHidden":8,"MPIters":3,"ArcGamma":0.05},"Params":[],"Shapes":[]}`))
	f.Add([]byte(`{"Cfg":{"Hidden":99999999,"WireHidden":8,"CellHidden":8,"MPIters":3,"ArcGamma":0.05}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := gnn.Decode("fuzz", data)
		if err != nil {
			var ce *guard.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("decoder failed with a non-CorruptError: %T %v", err, err)
			}
			return
		}
		for i, p := range got.Params() {
			if p.Rows*p.Cols != len(p.Data) {
				t.Fatalf("decoded tensor %d: %dx%d with %d values", i, p.Rows, p.Cols, len(p.Data))
			}
		}
	})
}
