package gnn

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"

	"tsteiner/internal/guard"
	"tsteiner/internal/tensor"
)

// Config sizes the evaluator.
type Config struct {
	// Hidden is the Steiner-graph embedding width.
	Hidden int
	// WireHidden / CellHidden size the delay-head MLPs.
	WireHidden, CellHidden int
	// MPIters is the number of broadcast/reduce rounds (the paper uses 3;
	// 0 disables Steiner-graph message passing entirely).
	MPIters int
	// ArcGamma is the LSE temperature (ns) smoothing the per-pin max over
	// fanin arrivals during netlist propagation.
	ArcGamma float64
	// NoSteinerFeatures replaces every tree-geometry feature (Elmore
	// surrogate, path lengths, tree capacitance) with netlist-only
	// equivalents (HPWL-based), turning the model into the paper's
	// reference [13] class of evaluator: pre-routing prediction with no
	// Steiner awareness. Used to quantify the Steiner graph's value
	// (and it removes all position gradients, so it cannot drive
	// refinement).
	NoSteinerFeatures bool
}

// DefaultConfig mirrors the paper's setup at a width that trains in
// seconds on a single core.
func DefaultConfig() Config {
	return Config{Hidden: 8, WireHidden: 8, CellHidden: 8, MPIters: 3, ArcGamma: 0.05}
}

// Model holds the trainable parameters of the timing evaluator.
type Model struct {
	Cfg Config

	// Steiner-graph stage.
	WNode, BNode     *tensor.Tensor // node encoder: 6 → H
	WBroad, BBroad   *tensor.Tensor // broadcast message: 2H+1 → H
	WReduce, BReduce *tensor.Tensor // reduce message: 2H+2 → H

	// Wire-delay head: H + 4 engineered features → WireHidden → 1.
	WWire1, BWire1, WWire2, BWire2 *tensor.Tensor
	// Cell-delay head: 3 features → CellHidden → 1.
	WCell1, BCell1, WCell2, BCell2 *tensor.Tensor
	// Register launch head (CK→Q): 3 features → 4 → 1.
	WQ1, BQ1, WQ2, BQ2 *tensor.Tensor

	// Physics anchors: learned non-negative gains (via softplus) on the
	// differentiable first-order delay models. They guarantee that the
	// dominant position gradient has the physical sign — more Elmore, more
	// delay — while the MLP heads learn non-negative residual corrections.
	PElm, PPath, PCell, PQ *tensor.Tensor
}

// NewModel initializes parameters deterministically from the seed.
func NewModel(cfg Config, seed int64) *Model {
	if cfg.Hidden <= 0 || cfg.WireHidden <= 0 || cfg.CellHidden <= 0 || cfg.MPIters < 0 || cfg.ArcGamma <= 0 {
		noSteiner := cfg.NoSteinerFeatures
		cfg = DefaultConfig()
		cfg.NoSteinerFeatures = noSteiner
	}
	rng := rand.New(rand.NewSource(seed))
	H := cfg.Hidden
	mk := func(r, c int) *tensor.Tensor {
		t := tensor.NewMatrix(r, c)
		tensor.XavierInit(t, rng)
		return t
	}
	vec := func(n int) *tensor.Tensor { return tensor.NewMatrix(1, n) }
	// Delta heads end in Softplus; biasing their output layers negative
	// makes initial predicted stage delays small (softplus(-3) ≈ 0.05 ns),
	// the right order of magnitude, which cuts training time sharply.
	negBias := func() *tensor.Tensor {
		t := vec(1)
		t.Data[0] = -3
		return t
	}
	scalar := func(v float64) *tensor.Tensor {
		t := vec(1)
		t.Data[0] = v
		return t
	}
	return &Model{
		Cfg:   cfg,
		WNode: mk(6, H), BNode: vec(H),
		WBroad: mk(2*H+1, H), BBroad: vec(H),
		WReduce: mk(2*H+2, H), BReduce: vec(H),
		WWire1: mk(H+4, cfg.WireHidden), BWire1: vec(cfg.WireHidden),
		WWire2: mk(cfg.WireHidden, 1), BWire2: negBias(),
		WCell1: mk(3, cfg.CellHidden), BCell1: vec(cfg.CellHidden),
		WCell2: mk(cfg.CellHidden, 1), BCell2: negBias(),
		WQ1: mk(3, 4), BQ1: vec(4),
		WQ2: mk(4, 1), BQ2: negBias(),
		// softplus(0.5413) ≈ 1: anchors start at unit gain; the path-term
		// gain starts tiny (it is a correction on top of Elmore).
		PElm:  scalar(0.5413),
		PPath: scalar(-3),
		PCell: scalar(0.5413),
		PQ:    scalar(0.5413),
	}
}

// Clone returns a deep copy of the model sharing no tensors with the
// receiver. Forward attaches parameters to the caller's tape (writing the
// tensors' tape pointer and, when training, their gradient buffers), so a
// model must not be used from two goroutines at once — concurrent
// evaluation or refinement runs must each operate on their own clone.
// Cloned parameters are value-identical, so predictions and gradients are
// byte-identical to the original's.
func (m *Model) Clone() *Model {
	c := NewModel(m.Cfg, 0)
	dst := c.Params()
	for i, p := range m.Params() {
		copy(dst[i].Data, p.Data)
	}
	return c
}

// SnapshotParams deep-copies every trainable tensor's values in Params()
// order — the model half of a training checkpoint.
func (m *Model) SnapshotParams() [][]float64 {
	ps := m.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// RestoreParams overwrites the trainable tensors from a snapshot taken on
// an identically-configured model.
func (m *Model) RestoreParams(vals [][]float64) error {
	ps := m.Params()
	if len(vals) != len(ps) {
		return fmt.Errorf("gnn: snapshot has %d tensors, want %d", len(vals), len(ps))
	}
	for i, p := range ps {
		if len(vals[i]) != p.Len() {
			return fmt.Errorf("gnn: snapshot tensor %d has %d values, want %d", i, len(vals[i]), p.Len())
		}
	}
	for i, p := range ps {
		copy(p.Data, vals[i])
	}
	return nil
}

// SyncParamsFrom copies parameter values from src into the receiver
// (shapes must match — both models must share a Config). Used by pooled
// training workers to refresh a reused clone instead of allocating a new
// one each epoch.
func (m *Model) SyncParamsFrom(src *Model) {
	dst := m.Params()
	for i, p := range src.Params() {
		copy(dst[i].Data, p.Data)
	}
}

// Params returns every trainable tensor.
func (m *Model) Params() []*tensor.Tensor {
	return []*tensor.Tensor{
		m.WNode, m.BNode, m.WBroad, m.BBroad, m.WReduce, m.BReduce,
		m.WWire1, m.BWire1, m.WWire2, m.BWire2,
		m.WCell1, m.BCell1, m.WCell2, m.BCell2,
		m.WQ1, m.BQ1, m.WQ2, m.BQ2,
		m.PElm, m.PPath, m.PCell, m.PQ,
	}
}

// Prediction is the output of a forward pass.
type Prediction struct {
	// Arrival is the predicted arrival time per pin [NPins × 1].
	Arrival *tensor.Tensor
	// EndpointArrival gathers Arrival at the batch's endpoints.
	EndpointArrival *tensor.Tensor
	// Slack = required − arrival per endpoint.
	Slack *tensor.Tensor
}

// Forward runs the two-stage evaluation. xs/ys are the Steiner coordinate
// tensors (leaves when gradients are wanted, constants otherwise);
// trainParams controls whether model parameters join the tape as leaves.
func (m *Model) Forward(tp *tensor.Tape, b *Batch, xs, ys *tensor.Tensor, trainParams bool) (*Prediction, error) {
	attach := tp.Constant
	if trainParams {
		attach = tp.Leaf
	}
	for _, p := range m.Params() {
		attach(p)
	}

	// ---- coordinates & edge lengths ----
	// Batch constants join the tape as aliases: the backing slices are
	// immutable for the batch's lifetime and ops never write inputs.
	pinX, err := tp.Alias(len(b.ConstPinX), 1, b.ConstPinX)
	if err != nil {
		return nil, err
	}
	pinY, _ := tp.Alias(len(b.ConstPinY), 1, b.ConstPinY)
	combX, err := tp.ConcatRows(xs, pinX)
	if err != nil {
		return nil, err
	}
	combY, err := tp.ConcatRows(ys, pinY)
	if err != nil {
		return nil, err
	}
	nodeX, err := tp.GatherRows(combX, b.SrcIdx)
	if err != nil {
		return nil, err
	}
	nodeY, err := tp.GatherRows(combY, b.SrcIdx)
	if err != nil {
		return nil, err
	}

	lenE, err := m.edgeLengths(tp, b, nodeX, nodeY)
	if err != nil {
		return nil, err
	}

	// ---- engineered differentiable parasitics ----
	// Subtree wire length per edge: own length plus descendants.
	descLen, err := gatherSegSum(tp, lenE, b.SubPairEdge, b.SubPairAnchor, len(b.EdgePar))
	if err != nil {
		return nil, err
	}
	subLen, err := tp.Add(lenE, descLen)
	if err != nil {
		return nil, err
	}
	// Downstream cap per edge: c̄·subLen + pin cap below (const).
	wireCapDown, err := tp.Scale(subLen, b.CAvg)
	if err != nil {
		return nil, err
	}
	pinCapBelow, _ := tp.Alias(len(b.PinCapBelowEdge), 1, b.PinCapBelowEdge)
	capDown, err := tp.Add(wireCapDown, pinCapBelow)
	if err != nil {
		return nil, err
	}
	// Elmore contribution per edge: r̄·len ⊙ capDown.
	rE, err := tp.Scale(lenE, b.RAvg)
	if err != nil {
		return nil, err
	}
	elmE, err := tp.Mul(rE, capDown)
	if err != nil {
		return nil, err
	}
	// Per-sink Elmore and path length.
	nSinks := len(b.SinkSinkPin)
	elmS, err := gatherSegSum(tp, elmE, b.PathPairEdge, b.PathPairSink, nSinks)
	if err != nil {
		return nil, err
	}
	pathS, err := gatherSegSum(tp, lenE, b.PathPairEdge, b.PathPairSink, nSinks)
	if err != nil {
		return nil, err
	}
	// Net capacitance per tree: c̄·treeLen + Σ pin caps.
	treeLen, err := tp.SegmentSum(lenE, b.EdgeTree, b.NTrees)
	if err != nil {
		return nil, err
	}
	wireCapT, err := tp.Scale(treeLen, b.CAvg)
	if err != nil {
		return nil, err
	}
	pinCapT, _ := tp.Alias(len(b.PinCapSumTree), 1, b.PinCapSumTree)
	netCap, err := tp.Add(wireCapT, pinCapT)
	if err != nil {
		return nil, err
	}

	// Netlist-only variant: strip every tree-derived feature, leaving the
	// HPWL-based estimates a pre-routing predictor without Steiner
	// awareness would use (paper reference [13] class). Combined with
	// MPIters=0 the model becomes fully Steiner-blind.
	if m.Cfg.NoSteinerFeatures {
		nSinks := len(b.SinkSinkPin)
		elmS = tp.Zeros(nSinks, 1)
		pathS = tp.Zeros(nSinks, 1)
		hp, err := tp.Alias(len(b.NetHPWL), 1, b.NetHPWL)
		if err != nil {
			return nil, err
		}
		hpCap, err := tp.Scale(hp, b.CAvg)
		if err != nil {
			return nil, err
		}
		pinCapT2, _ := tp.Alias(len(b.PinCapSumTree), 1, b.PinCapSumTree)
		netCap, err = tp.Add(hpCap, pinCapT2)
		if err != nil {
			return nil, err
		}
	}

	// ---- Steiner-graph message passing ----
	h, err := m.steinerMP(tp, b, nodeX, nodeY, lenE, elmS, pathS)
	if err != nil {
		return nil, err
	}

	// ---- netlist propagation ----
	return m.propagate(tp, b, h, elmS, pathS, netCap)
}

// edgeLengths computes |Δx|+|Δy| per oriented tree edge.
func (m *Model) edgeLengths(tp *tensor.Tape, b *Batch, nodeX, nodeY *tensor.Tensor) (*tensor.Tensor, error) {
	ax, err := tp.GatherRows(nodeX, b.EdgePar)
	if err != nil {
		return nil, err
	}
	bx, _ := tp.GatherRows(nodeX, b.EdgeChild)
	ay, _ := tp.GatherRows(nodeY, b.EdgePar)
	by, _ := tp.GatherRows(nodeY, b.EdgeChild)
	dx, err := tp.Sub(ax, bx)
	if err != nil {
		return nil, err
	}
	dy, _ := tp.Sub(ay, by)
	adx, err := tp.Abs(dx)
	if err != nil {
		return nil, err
	}
	ady, _ := tp.Abs(dy)
	return tp.Add(adx, ady)
}

// gatherSegSum is the sparse accumulate out[dst[i]] += src[idx[i]].
func gatherSegSum(tp *tensor.Tape, src *tensor.Tensor, idx, dst []int32, nOut int) (*tensor.Tensor, error) {
	g, err := tp.GatherRows(src, idx)
	if err != nil {
		return nil, err
	}
	return tp.SegmentSum(g, dst, nOut)
}

// steinerMP runs MPIters rounds of broadcast (tree edges, parent→child)
// and reduce (net edges, sink→driver), the paper's bidirectional net
// propagation on the Steiner graph.
func (m *Model) steinerMP(tp *tensor.Tape, b *Batch, nodeX, nodeY, lenE, elmS, pathS *tensor.Tensor) (*tensor.Tensor, error) {
	xn, err := tp.Scale(nodeX, b.LenScale)
	if err != nil {
		return nil, err
	}
	yn, _ := tp.Scale(nodeY, b.LenScale)
	feats, _ := tp.Alias(b.NNodes, 4, b.NodeFeats)
	f0, err := tp.ConcatCols(xn, yn, feats)
	if err != nil {
		return nil, err
	}
	lin, err := tp.Linear(f0, m.WNode, m.BNode)
	if err != nil {
		return nil, err
	}
	h, err := tp.Tanh(lin)
	if err != nil {
		return nil, err
	}

	lenEn, err := tp.Scale(lenE, b.LenScale)
	if err != nil {
		return nil, err
	}
	elmSn, _ := tp.Scale(elmS, b.ElmScale)
	pathSn, _ := tp.Scale(pathS, b.LenScale)

	for it := 0; it < m.Cfg.MPIters; it++ {
		// Broadcast: message along each tree edge to its child node.
		hp, err := tp.GatherRows(h, b.EdgePar)
		if err != nil {
			return nil, err
		}
		hc, _ := tp.GatherRows(h, b.EdgeChild)
		bin, err := tp.ConcatCols(hp, hc, lenEn)
		if err != nil {
			return nil, err
		}
		blin, err := tp.Linear(bin, m.WBroad, m.BBroad)
		if err != nil {
			return nil, err
		}
		bmsg, err := tp.Tanh(blin)
		if err != nil {
			return nil, err
		}
		upd, err := tp.SegmentSum(bmsg, b.EdgeChild, b.NNodes)
		if err != nil {
			return nil, err
		}
		h, err = tp.Add(h, upd)
		if err != nil {
			return nil, err
		}

		// Reduce: messages from sink pin nodes back to their driver node.
		hs, err := tp.GatherRows(h, b.SinkTreeNode)
		if err != nil {
			return nil, err
		}
		hd, _ := tp.GatherRows(h, b.SinkDrvNode)
		rin, err := tp.ConcatCols(hs, hd, elmSn, pathSn)
		if err != nil {
			return nil, err
		}
		rlin, err := tp.Linear(rin, m.WReduce, m.BReduce)
		if err != nil {
			return nil, err
		}
		rmsg, err := tp.Tanh(rlin)
		if err != nil {
			return nil, err
		}
		rupd, err := tp.SegmentMean(rmsg, b.SinkDrvNode, b.NNodes)
		if err != nil {
			return nil, err
		}
		h, err = tp.Add(h, rupd)
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// propagate walks netlist levels, predicting wire deltas for net sinks and
// cell deltas (with a smooth max over fanin) for cell outputs.
func (m *Model) propagate(tp *tensor.Tape, b *Batch, h, elmS, pathS, netCap *tensor.Tensor) (*Prediction, error) {
	arr := tp.Zeros(b.NPins, 1)

	// Register launches: arrival at Q = f(arc consts, net load).
	if len(b.QPins) > 0 {
		qf, err := tp.Alias(len(b.QPins), 2, b.QFeats)
		if err != nil {
			return nil, err
		}
		qcap, err := tp.GatherRows(netCap, b.QNet)
		if err != nil {
			return nil, err
		}
		qcapn, _ := tp.Scale(qcap, 20) // pF → O(1)
		qin, err := tp.ConcatCols(qf, qcapn)
		if err != nil {
			return nil, err
		}
		ql1, err := tp.Linear(qin, m.WQ1, m.BQ1)
		if err != nil {
			return nil, err
		}
		qa, err := tp.Tanh(ql1)
		if err != nil {
			return nil, err
		}
		ql2, err := tp.Linear(qa, m.WQ2, m.BQ2)
		if err != nil {
			return nil, err
		}
		qres, err := tp.Softplus(ql2)
		if err != nil {
			return nil, err
		}
		// Anchor: CK→Q ≈ d0 + slope·load, with a learned unit-init gain.
		qAnchor, err := m.anchoredDelay(tp, b.QD0, b.QSlope, qcap, m.PQ)
		if err != nil {
			return nil, err
		}
		qd, err := tp.Add(qAnchor, qres)
		if err != nil {
			return nil, err
		}
		upd, err := tp.SegmentSum(qd, b.QPins, b.NPins)
		if err != nil {
			return nil, err
		}
		arr, err = tp.Add(arr, upd)
		if err != nil {
			return nil, err
		}
	}

	elmSn, err := tp.Scale(elmS, b.ElmScale)
	if err != nil {
		return nil, err
	}
	pathSn, _ := tp.Scale(pathS, b.LenScale)
	distS, _ := tp.Alias(len(b.SinkDistDirect), 1, b.SinkDistDirect)
	distSn, _ := tp.Scale(distS, b.LenScale)
	capS, err := tp.GatherRows(netCap, b.SinkNet)
	if err != nil {
		return nil, err
	}
	capSn, _ := tp.Scale(capS, 20)

	// Precompute full per-sink wire features once; levels gather rows.
	hSink, err := tp.GatherRows(h, b.SinkTreeNode)
	if err != nil {
		return nil, err
	}
	wireFeat, err := tp.ConcatCols(hSink, elmSn, pathSn, distSn, capSn)
	if err != nil {
		return nil, err
	}
	wl1, err := tp.Linear(wireFeat, m.WWire1, m.BWire1)
	if err != nil {
		return nil, err
	}
	wa, err := tp.Tanh(wl1)
	if err != nil {
		return nil, err
	}
	wl2, err := tp.Linear(wa, m.WWire2, m.BWire2)
	if err != nil {
		return nil, err
	}
	wireRes, err := tp.Softplus(wl2) // [nSinks,1] ≥ 0 residual
	if err != nil {
		return nil, err
	}
	// Physics anchor: wire delay ≈ gain_e·Elmore + gain_p·pathLen, both
	// gains non-negative, so ∂delay/∂position carries the Elmore sign.
	spElm, err := tp.Softplus(m.PElm)
	if err != nil {
		return nil, err
	}
	elmTerm, err := tp.MulBroadcast(elmS, spElm)
	if err != nil {
		return nil, err
	}
	spPath, err := tp.Softplus(m.PPath)
	if err != nil {
		return nil, err
	}
	pathSmall, err := tp.Scale(pathS, 1e-4)
	if err != nil {
		return nil, err
	}
	pathTerm, err := tp.MulBroadcast(pathSmall, spPath)
	if err != nil {
		return nil, err
	}
	wireAnchor, err := tp.Add(elmTerm, pathTerm)
	if err != nil {
		return nil, err
	}
	wireDelta, err := tp.Add(wireAnchor, wireRes)
	if err != nil {
		return nil, err
	}

	for li := range b.Levels {
		L := &b.Levels[li]
		// Net sinks: arrival = driver arrival + wire delta.
		if len(L.SinkIdx) > 0 {
			aDrv, err := tp.GatherRows(arr, L.SinkDrvPin)
			if err != nil {
				return nil, err
			}
			dlt, err := tp.GatherRows(wireDelta, L.SinkIdx)
			if err != nil {
				return nil, err
			}
			aSnk, err := tp.Add(aDrv, dlt)
			if err != nil {
				return nil, err
			}
			upd, err := tp.SegmentSum(aSnk, L.SinkSnkPin, b.NPins)
			if err != nil {
				return nil, err
			}
			arr, err = tp.Add(arr, upd)
			if err != nil {
				return nil, err
			}
		}
		// Cell arcs: out arrival = smoothmax over (in arrival + delta).
		if len(L.ArcIn) > 0 {
			af, err := tp.Alias(len(L.ArcIn), 2, L.ArcFeats)
			if err != nil {
				return nil, err
			}
			// Load of the driven net (0 for unconnected outputs);
			// mask/index arrays are precomputed by finalizeDerived.
			mask, _ := tp.Alias(len(L.ArcLoadMask), 1, L.ArcLoadMask)
			capArc, err := tp.GatherRows(netCap, L.ArcNetIdx)
			if err != nil {
				return nil, err
			}
			capMasked, err := tp.Mul(capArc, mask)
			if err != nil {
				return nil, err
			}
			capN, _ := tp.Scale(capMasked, 20)
			cin, err := tp.ConcatCols(af, capN)
			if err != nil {
				return nil, err
			}
			cl1, err := tp.Linear(cin, m.WCell1, m.BCell1)
			if err != nil {
				return nil, err
			}
			ca, err := tp.Tanh(cl1)
			if err != nil {
				return nil, err
			}
			cl2, err := tp.Linear(ca, m.WCell2, m.BCell2)
			if err != nil {
				return nil, err
			}
			cres, err := tp.Softplus(cl2)
			if err != nil {
				return nil, err
			}
			cAnchor, err := m.anchoredDelay(tp, L.ArcD0, L.ArcSlope, capMasked, m.PCell)
			if err != nil {
				return nil, err
			}
			cdlt, err := tp.Add(cAnchor, cres)
			if err != nil {
				return nil, err
			}
			aIn, err := tp.GatherRows(arr, L.ArcIn)
			if err != nil {
				return nil, err
			}
			cand, err := tp.Add(aIn, cdlt)
			if err != nil {
				return nil, err
			}
			aOut, err := tp.SegmentLSE(cand, L.ArcOutLocal, len(L.OutPins), m.Cfg.ArcGamma)
			if err != nil {
				return nil, err
			}
			upd, err := tp.SegmentSum(aOut, L.OutPins, b.NPins)
			if err != nil {
				return nil, err
			}
			arr, err = tp.Add(arr, upd)
			if err != nil {
				return nil, err
			}
		}
	}

	epArr, err := tp.GatherRows(arr, b.Endpoints)
	if err != nil {
		return nil, err
	}
	req, err := tp.Alias(len(b.EndpointReq), 1, b.EndpointReq)
	if err != nil {
		return nil, err
	}
	slack, err := tp.Sub(req, epArr)
	if err != nil {
		return nil, err
	}
	return &Prediction{Arrival: arr, EndpointArrival: epArr, Slack: slack}, nil
}

// anchoredDelay computes softplus(gain)·(d0 + slope·load) for per-arc
// constant columns (split once from [d0, slope] feature pairs by
// finalizeDerived) and a differentiable load column — the first-order
// LUT model that anchors each delay head.
func (m *Model) anchoredDelay(tp *tensor.Tape, d0, slope []float64, load *tensor.Tensor, gain *tensor.Tensor) (*tensor.Tensor, error) {
	n := len(d0)
	d0t, err := tp.Alias(n, 1, d0)
	if err != nil {
		return nil, err
	}
	slopeT, _ := tp.Alias(n, 1, slope)
	loadTerm, err := tp.Mul(slopeT, load)
	if err != nil {
		return nil, err
	}
	base, err := tp.Add(d0t, loadTerm)
	if err != nil {
		return nil, err
	}
	spGain, err := tp.Softplus(gain)
	if err != nil {
		return nil, err
	}
	return tp.MulBroadcast(base, spGain)
}

// modelJSON serializes parameters for Save/Load.
type modelJSON struct {
	Cfg    Config
	Params [][]float64
	Shapes [][2]int
}

// Hash returns a short stable digest of the model: the config plus the
// raw bits of every parameter, in parameter order. Run manifests record
// it so every refined result is attributable to the exact evaluator that
// produced it — two models with equal hashes are bit-identical.
func (m *Model) Hash() string {
	h := fnv.New64a()
	json.NewEncoder(h).Encode(m.Cfg)
	var b [8]byte
	for _, p := range m.Params() {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Save writes the model to path as JSON. The write is atomic (temp file +
// rename), so a crash mid-save leaves the previous model file intact
// instead of a truncated one.
func (m *Model) Save(path string) error {
	js := modelJSON{Cfg: m.Cfg}
	for _, p := range m.Params() {
		js.Params = append(js.Params, p.Data)
		js.Shapes = append(js.Shapes, [2]int{p.Rows, p.Cols})
	}
	data, err := json.Marshal(js)
	if err != nil {
		return err
	}
	return guard.AtomicWriteFile(path, data, 0o644)
}

// maxModelWidth bounds the layer sizes Decode will instantiate: a
// corrupt or hostile file must not be able to request multi-gigabyte
// parameter tensors before shape validation can reject it.
const maxModelWidth = 1 << 12

// validateConfig rejects configs that NewModel cannot size sanely.
func validateConfig(cfg Config) error {
	for _, d := range []struct {
		name string
		v    int
	}{{"Hidden", cfg.Hidden}, {"WireHidden", cfg.WireHidden}, {"CellHidden", cfg.CellHidden}} {
		if d.v < 1 || d.v > maxModelWidth {
			return fmt.Errorf("%s %d outside [1, %d]", d.name, d.v, maxModelWidth)
		}
	}
	if cfg.MPIters < 0 || cfg.MPIters > 64 {
		return fmt.Errorf("MPIters %d outside [0, 64]", cfg.MPIters)
	}
	if !(cfg.ArcGamma > 0) || cfg.ArcGamma > 100 {
		return fmt.Errorf("ArcGamma %g outside (0, 100]", cfg.ArcGamma)
	}
	return nil
}

// Decode reconstructs a model from the bytes Save wrote. path only
// labels errors. Arbitrary input must yield either a model or a
// *guard.CorruptError — never a panic, an over-allocation, or a partial
// decode (this is the fuzzing surface behind Load).
func Decode(path string, data []byte) (*Model, error) {
	var js modelJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, &guard.CorruptError{Path: path, Reason: "truncated or malformed model JSON", Err: err}
	}
	if err := validateConfig(js.Cfg); err != nil {
		return nil, &guard.CorruptError{Path: path, Reason: fmt.Sprintf("invalid config: %v", err)}
	}
	m := NewModel(js.Cfg, 0)
	ps := m.Params()
	if len(js.Params) != len(ps) || len(js.Shapes) != len(ps) {
		return nil, &guard.CorruptError{Path: path,
			Reason: fmt.Sprintf("saved model has %d tensors, want %d", len(js.Params), len(ps))}
	}
	for i, p := range ps {
		if js.Shapes[i] != [2]int{p.Rows, p.Cols} {
			return nil, &guard.CorruptError{Path: path, Reason: fmt.Sprintf("tensor %d shape mismatch", i)}
		}
		if len(js.Params[i]) != p.Len() {
			return nil, &guard.CorruptError{Path: path, Reason: fmt.Sprintf("tensor %d has %d values, want %d", i, len(js.Params[i]), p.Len())}
		}
		copy(p.Data, js.Params[i])
	}
	return m, nil
}

// Load reads a model saved by Save. A truncated or structurally invalid
// file is rejected with a *guard.CorruptError — never a partial decode.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(path, data)
}
