package lib

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Arc is a characterized timing arc from one input pin to the output pin of
// a cell, carrying NLDM delay and output-slew tables.
type Arc struct {
	From  string // input pin name
	Delay *LUT   // arc delay (ns)
	Slew  *LUT   // output slew (ns)
}

// Cell describes one standard-cell master.
type Cell struct {
	Name       string
	Inputs     []string // input pin names (for a DFF: D then CK)
	Output     string   // single output pin name
	Sequential bool     // true for registers (DFF)

	// InputCap is the pin capacitance (pF) per input pin, keyed by name.
	InputCap map[string]float64

	// DriveRes is the equivalent output drive resistance (kΩ), used by the
	// RC extractor as the source resistance of the net's RC tree.
	DriveRes float64

	// Arcs characterize input→output delay. For a DFF the only delay arc
	// is CK→Q; the D input instead has a setup constraint.
	Arcs []Arc

	// Setup is the setup time (ns) required at the D pin of a register
	// relative to the capturing clock edge. Zero for combinational cells.
	Setup float64
	// Hold is the hold time (ns) the D pin must remain stable after the
	// clock edge. Zero for combinational cells.
	Hold float64

	// MaxCap is the largest output load (pF) the cell is characterized
	// for; loads beyond it are legal but extrapolated (clamped).
	MaxCap float64
}

// ArcFrom returns the timing arc from the named input, or nil if the input
// has no delay arc (e.g. the D pin of a register).
func (c *Cell) ArcFrom(input string) *Arc {
	for i := range c.Arcs {
		if c.Arcs[i].From == input {
			return &c.Arcs[i]
		}
	}
	return nil
}

// Library is a collection of cell masters plus the interconnect technology
// parameters needed by RC extraction.
type Library struct {
	Cells map[string]*Cell

	// Interconnect technology: per-DBU wire resistance (kΩ) and
	// capacitance (pF) per routing layer, plus via resistance (kΩ).
	// Layer 0 is the lowest metal; higher layers are progressively
	// wider/faster, as in a real back-end stack.
	LayerRes []float64
	LayerCap []float64
	ViaRes   float64

	// ClockPeriod is the default timing constraint (ns) applied to all
	// register-to-register and I/O paths.
	ClockPeriod float64

	// MaxSlew is the max-transition design rule (ns): pins whose slew
	// exceeds it are reported as slew violations by STA. Unbuffered
	// high-fanout nets routinely violate it, as in real sign-off.
	MaxSlew float64
}

// Cell returns the named master or an error naming the missing cell.
func (l *Library) Cell(name string) (*Cell, error) {
	c, ok := l.Cells[name]
	if !ok {
		return nil, fmt.Errorf("lib: unknown cell %q", name)
	}
	return c, nil
}

// MustCell is Cell for callers that know the name is valid (tests,
// generators that only emit library names).
func (l *Library) MustCell(name string) *Cell {
	c, err := l.Cell(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Layers returns the number of routing layers in the technology.
func (l *Library) Layers() int { return len(l.LayerRes) }

// Fingerprint returns a short stable digest of the complete library —
// every cell parameter plus the interconnect technology — for run
// manifests: two runs with equal fingerprints used identical timing
// models. encoding/json sorts map keys, so the serialization (and hence
// the digest) is deterministic.
func (l *Library) Fingerprint() string {
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(l); err != nil {
		// Library is plain data; encoding cannot fail in practice. Keep
		// the signature error-free and make the failure visible instead.
		return "unhashable"
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Default characterization axes, spanning typical slews and loads for a
// 130nm-class library.
var (
	defaultSlewAxis = []float64{0.01, 0.05, 0.15, 0.40, 1.00}
	defaultLoadAxis = []float64{0.001, 0.01, 0.05, 0.15, 0.40}
)

// cellSpec captures the parametric characterization of one master used by
// Default to synthesize its LUTs.
type cellSpec struct {
	name   string
	inputs []string
	seq    bool
	// base intrinsic delay (ns), load slope (ns/pF), slew slope, cross term
	d0, dL, dS, dSL float64
	// output slew model
	s0, sL, sS float64
	inCap      float64 // pF per input
	driveRes   float64 // kΩ
	setup      float64 // ns, sequential only
	hold       float64 // ns, sequential only
}

func (sp cellSpec) build() *Cell {
	c := &Cell{
		Name:       sp.name,
		Inputs:     append([]string(nil), sp.inputs...),
		Output:     outputName(sp.seq),
		Sequential: sp.seq,
		InputCap:   map[string]float64{},
		DriveRes:   sp.driveRes,
		Setup:      sp.setup,
		Hold:       sp.hold,
		MaxCap:     defaultLoadAxis[len(defaultLoadAxis)-1],
	}
	for _, in := range sp.inputs {
		cap := sp.inCap
		if sp.seq && in == "CK" {
			cap = sp.inCap * 0.6 // clock pins are typically lighter
		}
		c.InputCap[in] = cap
	}
	arcsFrom := sp.inputs
	if sp.seq {
		arcsFrom = []string{"CK"} // the only delay arc of a DFF is CK→Q
	}
	for i, in := range arcsFrom {
		// Later inputs of a multi-input gate are marginally slower, the
		// usual stack-position effect.
		skew := 1.0 + 0.06*float64(i)
		c.Arcs = append(c.Arcs, Arc{
			From:  in,
			Delay: NewLUTFromModel(defaultSlewAxis, defaultLoadAxis, sp.d0*skew, sp.dS, sp.dL*skew, sp.dSL),
			Slew:  NewLUTFromModel(defaultSlewAxis, defaultLoadAxis, sp.s0, sp.sS, sp.sL, 0),
		})
	}
	return c
}

func outputName(seq bool) string {
	if seq {
		return "Q"
	}
	return "Z"
}

// Default builds the technology library used by every benchmark in this
// repository: a compact 130nm-class cell set with three drive strengths of
// buffering, the common two-input gates, and a D flip-flop, plus a
// five-layer interconnect stack.
func Default() *Library {
	specs := []cellSpec{
		{name: "INV_X1", inputs: []string{"A"}, d0: 0.018, dL: 1.95, dS: 0.11, dSL: 0.35, s0: 0.012, sL: 1.30, sS: 0.18, inCap: 0.0021, driveRes: 5.8},
		{name: "INV_X2", inputs: []string{"A"}, d0: 0.016, dL: 1.02, dS: 0.10, dSL: 0.20, s0: 0.011, sL: 0.70, sS: 0.16, inCap: 0.0040, driveRes: 3.0},
		{name: "BUF_X1", inputs: []string{"A"}, d0: 0.035, dL: 1.90, dS: 0.14, dSL: 0.30, s0: 0.013, sL: 1.25, sS: 0.10, inCap: 0.0022, driveRes: 5.6},
		{name: "BUF_X4", inputs: []string{"A"}, d0: 0.040, dL: 0.55, dS: 0.12, dSL: 0.10, s0: 0.012, sL: 0.38, sS: 0.08, inCap: 0.0075, driveRes: 1.6},
		{name: "NAND2_X1", inputs: []string{"A", "B"}, d0: 0.024, dL: 2.10, dS: 0.15, dSL: 0.40, s0: 0.014, sL: 1.45, sS: 0.20, inCap: 0.0025, driveRes: 6.2},
		{name: "NOR2_X1", inputs: []string{"A", "B"}, d0: 0.028, dL: 2.45, dS: 0.17, dSL: 0.45, s0: 0.016, sL: 1.60, sS: 0.22, inCap: 0.0026, driveRes: 7.0},
		{name: "AND2_X1", inputs: []string{"A", "B"}, d0: 0.047, dL: 2.00, dS: 0.16, dSL: 0.38, s0: 0.015, sL: 1.40, sS: 0.12, inCap: 0.0023, driveRes: 6.0},
		{name: "OR2_X1", inputs: []string{"A", "B"}, d0: 0.051, dL: 2.05, dS: 0.17, dSL: 0.40, s0: 0.015, sL: 1.42, sS: 0.13, inCap: 0.0023, driveRes: 6.1},
		{name: "XOR2_X1", inputs: []string{"A", "B"}, d0: 0.063, dL: 2.30, dS: 0.20, dSL: 0.50, s0: 0.018, sL: 1.55, sS: 0.16, inCap: 0.0041, driveRes: 6.5},
		{name: "AOI21_X1", inputs: []string{"A", "B", "C"}, d0: 0.033, dL: 2.60, dS: 0.19, dSL: 0.52, s0: 0.017, sL: 1.70, sS: 0.24, inCap: 0.0027, driveRes: 7.4},
		{name: "MUX2_X1", inputs: []string{"A", "B", "S"}, d0: 0.058, dL: 2.20, dS: 0.18, dSL: 0.42, s0: 0.016, sL: 1.48, sS: 0.14, inCap: 0.0030, driveRes: 6.3},
		{name: "DFF_X1", inputs: []string{"D", "CK"}, seq: true, d0: 0.110, dL: 2.00, dS: 0.05, dSL: 0.10, s0: 0.016, sL: 1.35, sS: 0.04, inCap: 0.0024, driveRes: 5.9, setup: 0.055, hold: 0.015},
		// Extended masters: available to hand-built designs and the
		// buffering optimizer, deliberately NOT in CombinationalNames so
		// the seeded benchmark generation (and its clock calibration)
		// stays byte-identical.
		{name: "INV_X4", inputs: []string{"A"}, d0: 0.015, dL: 0.52, dS: 0.09, dSL: 0.10, s0: 0.010, sL: 0.36, sS: 0.14, inCap: 0.0078, driveRes: 1.5},
		{name: "BUF_X2", inputs: []string{"A"}, d0: 0.038, dL: 1.05, dS: 0.13, dSL: 0.18, s0: 0.012, sL: 0.72, sS: 0.09, inCap: 0.0041, driveRes: 3.0},
		{name: "BUF_X8", inputs: []string{"A"}, d0: 0.044, dL: 0.30, dS: 0.11, dSL: 0.06, s0: 0.011, sL: 0.21, sS: 0.07, inCap: 0.0140, driveRes: 0.9},
		{name: "NAND2_X2", inputs: []string{"A", "B"}, d0: 0.022, dL: 1.10, dS: 0.14, dSL: 0.22, s0: 0.013, sL: 0.78, sS: 0.18, inCap: 0.0047, driveRes: 3.2},
		{name: "NAND3_X1", inputs: []string{"A", "B", "C"}, d0: 0.031, dL: 2.35, dS: 0.17, dSL: 0.48, s0: 0.016, sL: 1.62, sS: 0.23, inCap: 0.0027, driveRes: 6.9},
		{name: "NOR3_X1", inputs: []string{"A", "B", "C"}, d0: 0.038, dL: 2.85, dS: 0.20, dSL: 0.55, s0: 0.018, sL: 1.85, sS: 0.26, inCap: 0.0028, driveRes: 7.8},
		{name: "OAI21_X1", inputs: []string{"A", "B", "C"}, d0: 0.034, dL: 2.55, dS: 0.19, dSL: 0.50, s0: 0.017, sL: 1.68, sS: 0.24, inCap: 0.0027, driveRes: 7.2},
		{name: "DFF_X2", inputs: []string{"D", "CK"}, seq: true, d0: 0.105, dL: 1.05, dS: 0.05, dSL: 0.06, s0: 0.015, sL: 0.72, sS: 0.04, inCap: 0.0045, driveRes: 3.1, setup: 0.050, hold: 0.012},
	}
	cells := make(map[string]*Cell, len(specs))
	for _, sp := range specs {
		cells[sp.name] = sp.build()
	}
	return &Library{
		Cells: cells,
		// Five-layer stack; low layers are resistive and capacitive, high
		// layers fast. Values are per DBU (one track pitch ≈ 0.4µm at
		// 130nm): R in kΩ/DBU, C in pF/DBU.
		LayerRes:    []float64{0.00380, 0.00380, 0.00190, 0.00095, 0.00048},
		LayerCap:    []float64{0.000085, 0.000085, 0.000092, 0.000100, 0.000110},
		ViaRes:      0.0045,
		ClockPeriod: 4.0,
		MaxSlew:     1.5,
	}
}

// CombinationalNames returns the names of the non-sequential cells in the
// library in a deterministic order, for use by the synthetic netlist
// generator.
func (l *Library) CombinationalNames() []string {
	// Deterministic order matters for reproducible generation; avoid map
	// iteration order by listing explicitly from Default's spec order.
	order := []string{
		"INV_X1", "INV_X2", "BUF_X1", "BUF_X4", "NAND2_X1", "NOR2_X1",
		"AND2_X1", "OR2_X1", "XOR2_X1", "AOI21_X1", "MUX2_X1",
	}
	out := make([]string, 0, len(order))
	for _, n := range order {
		if c, ok := l.Cells[n]; ok && !c.Sequential {
			out = append(out, n)
		}
	}
	return out
}
