package lib

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLUTValidate(t *testing.T) {
	good := NewLUTFromModel([]float64{0.1, 0.2}, []float64{0.01, 0.02}, 1, 0, 0, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid LUT rejected: %v", err)
	}
	bad := &LUT{SlewAxis: []float64{0.2, 0.1}, LoadAxis: []float64{0.01}, Values: [][]float64{{1}, {2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("descending slew axis accepted")
	}
	empty := &LUT{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty LUT accepted")
	}
	ragged := &LUT{SlewAxis: []float64{0.1, 0.2}, LoadAxis: []float64{0.01, 0.02}, Values: [][]float64{{1, 2}, {3}}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged LUT accepted")
	}
}

func TestLUTExactAtGridPoints(t *testing.T) {
	slews := []float64{0.01, 0.05, 0.15}
	loads := []float64{0.001, 0.01, 0.05}
	lut := NewLUTFromModel(slews, loads, 0.02, 0.1, 2.0, 0.4)
	for _, s := range slews {
		for _, l := range loads {
			want := 0.02 + 0.1*s + 2.0*l + 0.4*s*l
			got := lut.Lookup(s, l)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Lookup(%g,%g)=%g want %g", s, l, got, want)
			}
		}
	}
}

func TestLUTInterpolationExactForModel(t *testing.T) {
	// Bilinear interpolation is exact for base + kS·s + kL·l + kSL·s·l
	// within a grid cell; verify at off-grid points.
	lut := NewLUTFromModel([]float64{0.0, 1.0}, []float64{0.0, 1.0}, 1.0, 2.0, 3.0, 4.0)
	f := func(sRaw, lRaw uint8) bool {
		s := float64(sRaw) / 255.0
		l := float64(lRaw) / 255.0
		want := 1.0 + 2.0*s + 3.0*l + 4.0*s*l
		return math.Abs(lut.Lookup(s, l)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUTClampsOutsideGrid(t *testing.T) {
	lut := NewLUTFromModel([]float64{0.1, 0.2}, []float64{0.01, 0.02}, 0, 1, 10, 0)
	// Below the grid → corner value at (0.1, 0.01).
	if got, want := lut.Lookup(0.0, 0.0), 0.1*1+0.01*10; math.Abs(got-want) > 1e-12 {
		t.Errorf("below-grid lookup=%g want %g", got, want)
	}
	// Above the grid → corner value at (0.2, 0.02).
	if got, want := lut.Lookup(9.0, 9.0), 0.2*1+0.02*10; math.Abs(got-want) > 1e-12 {
		t.Errorf("above-grid lookup=%g want %g", got, want)
	}
}

func TestLUTMonotoneInLoad(t *testing.T) {
	// Delay tables in Default all have positive load slope: more load,
	// more delay. Check monotonicity on a dense sweep.
	l := Default()
	for name, c := range l.Cells {
		for _, arc := range c.Arcs {
			prev := -math.MaxFloat64
			for load := 0.0; load <= 0.5; load += 0.01 {
				v := arc.Delay.Lookup(0.1, load)
				if v < prev-1e-12 {
					t.Errorf("%s arc %s: delay not monotone in load at %g", name, arc.From, load)
					break
				}
				prev = v
			}
		}
	}
}

func TestDefaultLibraryStructure(t *testing.T) {
	l := Default()
	if len(l.Cells) < 10 {
		t.Fatalf("library too small: %d cells", len(l.Cells))
	}
	if l.Layers() != 5 || len(l.LayerCap) != 5 {
		t.Fatalf("expected 5 routing layers")
	}
	if l.ClockPeriod <= 0 {
		t.Fatal("clock period must be positive")
	}
	dff := l.MustCell("DFF_X1")
	if !dff.Sequential || dff.Setup <= 0 {
		t.Fatal("DFF must be sequential with positive setup")
	}
	if dff.ArcFrom("D") != nil {
		t.Fatal("DFF must not have a D→Q delay arc")
	}
	if dff.ArcFrom("CK") == nil {
		t.Fatal("DFF must have a CK→Q arc")
	}
	for name, c := range l.Cells {
		if c.Output == "" {
			t.Errorf("%s: missing output pin", name)
		}
		for _, in := range c.Inputs {
			if c.InputCap[in] <= 0 {
				t.Errorf("%s: input %s has non-positive cap", name, in)
			}
		}
		if c.DriveRes <= 0 {
			t.Errorf("%s: non-positive drive resistance", name)
		}
		for _, arc := range c.Arcs {
			if err := arc.Delay.Validate(); err != nil {
				t.Errorf("%s delay LUT: %v", name, err)
			}
			if err := arc.Slew.Validate(); err != nil {
				t.Errorf("%s slew LUT: %v", name, err)
			}
		}
	}
}

func TestCellLookupErrors(t *testing.T) {
	l := Default()
	if _, err := l.Cell("NO_SUCH_CELL"); err == nil {
		t.Fatal("expected error for unknown cell")
	}
	if c, err := l.Cell("INV_X1"); err != nil || c.Name != "INV_X1" {
		t.Fatalf("Cell(INV_X1)=%v,%v", c, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCell should panic on unknown name")
		}
	}()
	l.MustCell("NO_SUCH_CELL")
}

func TestCombinationalNames(t *testing.T) {
	l := Default()
	names := l.CombinationalNames()
	if len(names) == 0 {
		t.Fatal("no combinational cells")
	}
	for _, n := range names {
		if l.MustCell(n).Sequential {
			t.Errorf("%s is sequential", n)
		}
	}
	// Deterministic order across calls.
	again := l.CombinationalNames()
	for i := range names {
		if names[i] != again[i] {
			t.Fatal("CombinationalNames order not deterministic")
		}
	}
}

func TestDriveStrengthOrdering(t *testing.T) {
	// A stronger buffer must have lower drive resistance and lower load
	// slope than the weak one.
	l := Default()
	weak, strong := l.MustCell("BUF_X1"), l.MustCell("BUF_X4")
	if strong.DriveRes >= weak.DriveRes {
		t.Error("BUF_X4 should have lower drive resistance than BUF_X1")
	}
	load := 0.3
	dWeak := weak.Arcs[0].Delay.Lookup(0.1, load)
	dStrong := strong.Arcs[0].Delay.Lookup(0.1, load)
	if dStrong >= dWeak {
		t.Errorf("at heavy load, BUF_X4 (%.4f) should beat BUF_X1 (%.4f)", dStrong, dWeak)
	}
}

func TestBracket(t *testing.T) {
	axis := []float64{1, 2, 4}
	cases := []struct {
		v        float64
		lo, hi   int
		fracWant float64
	}{
		{0.5, 0, 0, 0},
		{1, 0, 0, 0},
		{1.5, 0, 1, 0.5},
		{3, 1, 2, 0.5},
		{4, 2, 2, 0},
		{9, 2, 2, 0},
	}
	for _, c := range cases {
		lo, hi, f := bracket(axis, c.v)
		if lo != c.lo || hi != c.hi || math.Abs(f-c.fracWant) > 1e-12 {
			t.Errorf("bracket(%g)=(%d,%d,%g) want (%d,%d,%g)", c.v, lo, hi, f, c.lo, c.hi, c.fracWant)
		}
	}
}
