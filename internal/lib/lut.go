// Package lib models a standard-cell timing library in the style of a
// Liberty NLDM characterization: each timing arc carries two-dimensional
// lookup tables for delay and output slew indexed by input slew and output
// load, plus pin capacitances.
//
// Units used throughout the repository:
//
//	time        nanoseconds (ns)
//	capacitance picofarads (pF)
//	resistance  kilo-ohms (kΩ)
//
// so that R·C products are directly in nanoseconds.
package lib

import "fmt"

// LUT is a two-dimensional lookup table indexed by input slew (rows) and
// output load capacitance (columns), as in a Liberty NLDM table. Lookups
// bilinearly interpolate between grid points and clamp outside the grid,
// which is the common sign-off tool behaviour for out-of-range indices.
type LUT struct {
	SlewAxis []float64 // ascending input-slew index values (ns)
	LoadAxis []float64 // ascending output-load index values (pF)
	// Values[i][j] is the table value at SlewAxis[i], LoadAxis[j].
	Values [][]float64
}

// Validate checks structural invariants: both axes non-empty and strictly
// ascending, and Values shaped SlewAxis x LoadAxis.
func (t *LUT) Validate() error {
	if len(t.SlewAxis) == 0 || len(t.LoadAxis) == 0 {
		return fmt.Errorf("lib: LUT axes must be non-empty")
	}
	for i := 1; i < len(t.SlewAxis); i++ {
		if t.SlewAxis[i] <= t.SlewAxis[i-1] {
			return fmt.Errorf("lib: slew axis not strictly ascending at %d", i)
		}
	}
	for j := 1; j < len(t.LoadAxis); j++ {
		if t.LoadAxis[j] <= t.LoadAxis[j-1] {
			return fmt.Errorf("lib: load axis not strictly ascending at %d", j)
		}
	}
	if len(t.Values) != len(t.SlewAxis) {
		return fmt.Errorf("lib: LUT has %d rows, want %d", len(t.Values), len(t.SlewAxis))
	}
	for i, row := range t.Values {
		if len(row) != len(t.LoadAxis) {
			return fmt.Errorf("lib: LUT row %d has %d cols, want %d", i, len(row), len(t.LoadAxis))
		}
	}
	return nil
}

// Lookup returns the bilinearly interpolated table value at the given input
// slew and output load. Indices outside the characterized grid are clamped
// to the boundary before interpolation.
func (t *LUT) Lookup(slew, load float64) float64 {
	i0, i1, fi := bracket(t.SlewAxis, slew)
	j0, j1, fj := bracket(t.LoadAxis, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	v0 := v00 + (v01-v00)*fj
	v1 := v10 + (v11-v10)*fj
	return v0 + (v1-v0)*fi
}

// bracket locates v within ascending axis values, returning the two
// surrounding indices and the interpolation fraction in [0,1].
func bracket(axis []float64, v float64) (lo, hi int, frac float64) {
	n := len(axis)
	if n == 1 || v <= axis[0] {
		return 0, 0, 0
	}
	if v >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	// Axes are short (a handful of entries); linear scan beats binary
	// search bookkeeping here.
	for i := 1; i < n; i++ {
		if v <= axis[i] {
			f := (v - axis[i-1]) / (axis[i] - axis[i-1])
			return i - 1, i, f
		}
	}
	return n - 1, n - 1, 0
}

// NewLUTFromModel builds a LUT by sampling the affine-plus-cross model
//
//	value(slew, load) = base + kS·slew + kL·load + kSL·slew·load
//
// on the given axes. The model is the classic first-order fit used to
// synthesize characterization data; because bilinear interpolation is exact
// for this family within each grid cell, lookups reproduce the model
// exactly inside the characterized region.
func NewLUTFromModel(slewAxis, loadAxis []float64, base, kS, kL, kSL float64) *LUT {
	vals := make([][]float64, len(slewAxis))
	for i, s := range slewAxis {
		row := make([]float64, len(loadAxis))
		for j, l := range loadAxis {
			row[j] = base + kS*s + kL*l + kSL*s*l
		}
		vals[i] = row
	}
	return &LUT{SlewAxis: slewAxis, LoadAxis: loadAxis, Values: vals}
}
