#!/usr/bin/env bash
# verify.sh — the contributor verification loop from CLAUDE.md:
# build, vet, full tests, then the race-mode pass that gates the
# concurrency layer (internal/par and the obs collectors), a race-mode
# pass over the fault-tolerance suite (injected faults, checkpoint/
# resume, panic containment), the property/differential-oracle gate,
# the scaled-design gates (shard-count byte-identity under -race,
# windowed-STA oracle, streaming loader, and the BENCH_scale.json
# sub-linearity re-measurement), the multi-corner sign-off gates
# (per-corner fixpoint oracle, corner properties, and the multi-corner
# shard determinism matrix under -race), a
# short native-fuzz smoke over the byte-level decoders, the workspace
# and batched-forward byte-identity + benchmark-replay gates, the
# allocation-regression gate against BENCH_refine.json (including the
# batched per-candidate records), the live-observability smoke gate
# (-obs-listen scrape via tracestat + trace-fixture A/B regression
# detection), the tsteinerd daemon gates (byte-identity fault matrix
# under -race plus a boot/submit/scrape/drain smoke), and a refresh of
# the per-package coverage baseline in COVERAGE.md.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test ./...
go test -race -short ./...
go test -race -run 'Fault|Resume|Panic' ./...

# Daemon gate: the tsteinerd byte-identity + fault matrix (concurrent
# submits vs serial runner, kill/restart resume, queue saturation, retry
# storms) and the server/client cmd smoke, all under the race detector.
go test -race -run 'Serve|Job|Resume' ./...

# Live-observability race gate: concurrent /metrics+/trace scrapes while
# the full pipeline refines (server-on/off byte-identity runs under the
# race detector here; the -short race pass above skips it).
go test -race -run 'ObsServer|ConcurrentScrapes' ./internal/obs ./internal/exp

# Property-based tests + brute-force differential oracles.
go test -run 'Prop|Oracle' ./...

# Multi-corner sign-off gates: the per-corner fixpoint oracle on all ten
# benchmarks, typical-corner bitwise identity, the matrix-penalty
# refiner (hold guard, fault matrix), and the corner property tests —
# then the multi-corner shard determinism matrix under the race
# detector (byte-identity at any shard/worker count).
go test -run 'Corner|MultiCorner' ./...
go test -race -run 'MultiCornerDeterminism|PropCornerMonotone|CornerTypical' ./internal/shard ./internal/sta

# Scaled-design gates: the shard-count/worker-count byte-identity matrix
# (incremental path vs the full-pipeline Reference), the windowed-STA
# oracle, and the streaming-loader equivalence tests — then the
# determinism matrix again under the race detector (the -short race pass
# above runs it on a 3x design; this one is the full gate).
go test -run 'Shard|Window|Stream' ./...
go test -race -run 'ShardDeterminism' ./internal/shard

# Scale-regression gate: re-measure the smallest and largest pinned
# design sizes through the sharded engine and fail if per-round wall
# time stops being sub-linear in cell count (the committed
# BENCH_scale.json is held to the same bound statically by every
# `go test ./...` run via TestScaleBaselineSubLinear).
go test ./internal/bench/ -run TestBenchScaleGate -benchscale -timeout 30m

# Workspace determinism gates: pooled vs allocating evaluation must be
# byte-identical (down to final Steiner coordinates) at any worker
# count, and must replay the metrics recorded in BENCH_refine.json.
# BatchReplay covers the batched paths: the fused multi-candidate
# forward (refiner lanes, batched accumulation) against the sequential
# reference, bench- and pipeline-level.
go test -run 'Workspace|BenchReplay|BatchReplay' ./...

# Allocation-regression gate: re-measure the refine loop and fail if
# pooled allocs/op regress >10% over the committed BENCH_refine.json or
# stop being >=2x leaner than the allocating reference path.
# (package path first: go test hands the unknown -benchgate flag to the
# test binary, and everything after it too)
go test ./internal/bench/ -run TestBenchAllocGate -benchgate

# Live-observability smoke gate: a tiny run serving -obs-listen must
# answer /healthz and expose a valid Prometheus /metrics while it is
# refining; `tracestat -scrape` is the validator (export.ValidateText).
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
go build -o "$OBS_TMP/tsteiner" ./cmd/tsteiner
go build -o "$OBS_TMP/tracestat" ./cmd/tracestat
"$OBS_TMP/tsteiner" -design spm -scale 0.12 -epochs 4000 -iters 50 \
  -obs-listen 127.0.0.1:0 >"$OBS_TMP/run.log" 2>&1 &
OBS_PID=$!
OBS_URL=
for _ in $(seq 100); do
  OBS_URL=$(sed -n 's#.*obs: serving .* on \(http://[0-9.:]*\)$#\1#p' "$OBS_TMP/run.log" | head -1)
  [ -n "$OBS_URL" ] && break
  kill -0 "$OBS_PID" 2>/dev/null || { echo "obs smoke run died:"; cat "$OBS_TMP/run.log"; exit 1; }
  sleep 0.1
done
[ -n "$OBS_URL" ] || { echo "obs smoke run never logged its address"; cat "$OBS_TMP/run.log"; exit 1; }
"$OBS_TMP/tracestat" -scrape "$OBS_URL"
kill "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true

# tsteinerd smoke gate: boot the daemon on a random port, submit a tiny
# sign-off job through client mode, validate the daemon's /metrics with
# `tracestat -scrape`, then SIGTERM and require a clean drain (exit 0).
"$OBS_TMP/tsteiner" -design spm -scale 0.12 -baseline-only \
  -save-design "$OBS_TMP/design.json" >/dev/null 2>&1
"$OBS_TMP/tsteiner" -serve 127.0.0.1:0 -spool "$OBS_TMP/spool" \
  >"$OBS_TMP/serve.log" 2>&1 &
SRV_PID=$!
SRV_URL=
for _ in $(seq 100); do
  SRV_URL=$(sed -n 's#^tsteinerd listening on \(http://[0-9.:]*\)$#\1#p' "$OBS_TMP/serve.log" | head -1)
  [ -n "$SRV_URL" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || { echo "tsteinerd died at boot:"; cat "$OBS_TMP/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$SRV_URL" ] || { echo "tsteinerd never advertised its URL"; cat "$OBS_TMP/serve.log"; exit 1; }
"$OBS_TMP/tsteiner" -submit "$SRV_URL" -job-design "$OBS_TMP/design.json" \
  -kind signoff -job-id verify-smoke -wait 2m >"$OBS_TMP/submit.log" 2>&1
grep -q '"State": "done"' "$OBS_TMP/submit.log" \
  || { echo "tsteinerd smoke job did not finish:"; cat "$OBS_TMP/submit.log"; exit 1; }
"$OBS_TMP/tracestat" -scrape "$SRV_URL"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "tsteinerd did not drain cleanly"; cat "$OBS_TMP/serve.log"; exit 1; }

# Trace-analyzer gate against the committed fixtures: the analyzer must
# reproduce the rollup/convergence tables, and the A/B diff must flag
# the seeded regression in trace_b (exit nonzero).
"$OBS_TMP/tracestat" cmd/tracestat/testdata/trace_a.ndjson >/dev/null
if "$OBS_TMP/tracestat" -diff -min-ms 1 \
    cmd/tracestat/testdata/trace_a.ndjson cmd/tracestat/testdata/trace_b.ndjson \
    >/dev/null 2>&1; then
  echo "tracestat -diff failed to flag the seeded regression in trace_b" >&2
  exit 1
fi

# Fuzz smoke: 10 s per byte-level decoder. -run '^$' skips unit tests;
# bounded minimization keeps single-core runs productive.
go test -run '^$' -fuzz FuzzReadCheckpoint -fuzztime 10s -fuzzminimizetime=5x ./internal/guard/
go test -run '^$' -fuzz FuzzLoadDesign -fuzztime 10s -fuzzminimizetime=5x ./internal/designio/
go test -run '^$' -fuzz FuzzStreamDesign -fuzztime 10s -fuzzminimizetime=5x ./internal/designio/
go test -run '^$' -fuzz FuzzLoadModel -fuzztime 10s -fuzzminimizetime=5x ./internal/gnn/

# Refresh the per-package coverage baseline.
{
  echo '# Coverage baseline'
  echo
  echo 'Regenerated by `./verify.sh` (`go test -cover`, short mode).'
  echo 'Review diffs to this file like any other: a package dropping'
  echo 'sharply usually means tests were lost, not code added.'
  echo
  echo '```'
  go test -short -cover ./... \
    | sed -nE 's/^ok[[:space:]]+([^[:space:]]+).*coverage: ([0-9.]+)% of statements.*/\1 \2%/p' \
    | awk '{printf "%-44s %s\n", $1, $2}'
  echo '```'
} > COVERAGE.md
echo "coverage baseline written to COVERAGE.md"
