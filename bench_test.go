package tsteiner

// Benchmarks regenerating every table and figure of the paper at reduced
// scale (go test -bench=.). Each benchmark reports the headline numbers of
// its table/figure via b.ReportMetric so the series the paper reports are
// visible straight from the bench output; the full-scale runs are driven
// by cmd/experiments.
//
// The expensive shared state (baseline flows, the trained evaluator) is
// built once and reused by every benchmark.

import (
	"io"
	"sync"
	"testing"

	"tsteiner/internal/core"
	"tsteiner/internal/exp"
	"tsteiner/internal/train"
)

// benchScale shrinks the ten designs so the whole bench suite finishes in
// minutes on one core while keeping every experiment's shape.
const benchScale = 0.12

var (
	suiteOnce sync.Once
	suiteVal  *exp.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *exp.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := exp.Default()
		cfg.Scale = benchScale
		cfg.AugmentVariants = 1
		cfg.RandomTrials = 4
		cfg.LargeDesignTrials = 2
		cfg.Train = train.Options{Epochs: 60, LR: 1e-2, Seed: 1}
		suiteVal, suiteErr = exp.NewSuite(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TotalTrain.CellNodes), "trainCells")
		b.ReportMetric(float64(r.TotalTrain.Steiner+r.TotalTest.Steiner), "steinerNodes")
	}
}

func BenchmarkTable2(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		// The paper's headline: WNS and TNS ratios below 1.0.
		b.ReportMetric(r.AvgRatio[0], "wnsRatio")
		b.ReportMetric(r.AvgRatio[1], "tnsRatio")
		b.ReportMetric(r.AvgRatio[3], "wlRatio")
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgTrain.ArrivalAll, "r2TrainAll")
		b.ReportMetric(r.AvgTest.ArrivalAll, "r2TestAll")
	}
}

func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgTotalRatio, "totalRatio")
		b.ReportMetric(r.AvgDRRatio, "drRatio")
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, v := range r.All {
			mean += v
		}
		b.ReportMetric(mean/float64(len(r.All)), "meanTNSratio")
		b.ReportMetric(float64(len(r.All)), "trials")
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgTSteinerTNS, "tsTNSratio")
		b.ReportMetric(r.AvgRandomTNS, "randTNSratio")
	}
}

func BenchmarkStudyConsistency(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Consistency([]string{"spm", "APU"}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Avg, "pearsonTNS")
	}
}

func BenchmarkStudyTimingDrivenRoute(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.TimingDrivenRoute([]string{"spm", "APU"})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudySteinerAwareness(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.SteinerAwareness()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		var full, blind float64
		for _, row := range r.Rows {
			full += row.FullAll
			blind += row.BlindAll
		}
		n := float64(len(r.Rows))
		b.ReportMetric(full/n, "r2Full")
		b.ReportMetric(blind/n, "r2Blind")
	}
}

func BenchmarkStudyPriorWorkPD(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.PDComparison([]string{"spm"}, []float64{0.3, 0.7})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out, each compared
// on a small design through true sign-off.

func benchAblation(b *testing.B, mutate func(*core.Options)) {
	s := benchSuite(b)
	// The Ablations API runs all variants; for per-variant benches, run
	// one design with one mutated option set.
	for i := 0; i < b.N; i++ {
		r, err := s.AblationOne("spm", mutate)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TrueTNS, "trueTNS")
		b.ReportMetric(float64(r.Iterations), "iters")
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Gamma = 0.05 })
}

func BenchmarkAblationStepsize(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.FixedTheta = 4.0 })
}

func BenchmarkAblationGreedy(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.AlwaysAccept = true })
}

func BenchmarkAblationRawGradient(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.RawGradient = true })
}

func BenchmarkAblationPaperConfig(b *testing.B) {
	benchAblation(b, func(o *core.Options) {})
}
