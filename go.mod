module tsteiner

go 1.22
